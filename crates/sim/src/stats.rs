//! Streaming statistics and confidence intervals.

use serde::{Deserialize, Serialize};

/// Welford's online mean/variance accumulator.
///
/// # Example
///
/// ```
/// use fortress_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.n(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> RunningStats {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al.'s parallel
    /// Welford update: counts add, means combine weighted, and the second
    /// central moments combine with a between-groups correction).
    ///
    /// Merging is exact in infinite precision and, crucially for the
    /// parallel runner, **deterministic**: merging the same sequence of
    /// per-chunk accumulators in the same order gives bit-identical
    /// results no matter which threads produced the chunks.
    ///
    /// # Example
    ///
    /// ```
    /// use fortress_sim::stats::RunningStats;
    ///
    /// let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    /// let mut whole = RunningStats::new();
    /// let mut left = RunningStats::new();
    /// let mut right = RunningStats::new();
    /// for x in &data[..3] { whole.push(*x); left.push(*x); }
    /// for x in &data[3..] { whole.push(*x); right.push(*x); }
    /// left.merge(&right);
    /// assert_eq!(left.n(), whole.n());
    /// assert!((left.mean() - whole.mean()).abs() < 1e-12);
    /// assert!((left.variance() - whole.variance()).abs() < 1e-12);
    /// ```
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * (n2 / n);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.m2 / (self.n - 1) as f64
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Standard error of the mean relative to its magnitude — the
    /// stopping criterion for adaptive trial budgets. Infinite until the
    /// accumulator has two observations and a non-zero mean.
    pub fn relative_std_error(&self) -> f64 {
        if self.n < 2 || self.mean == 0.0 {
            return f64::INFINITY;
        }
        self.std_error() / self.mean.abs()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// 95% Student-t confidence interval of the mean.
    pub fn estimate(&self) -> Estimate {
        // With fewer than two observations the interval is unbounded.
        let half = if self.n < 2 {
            f64::INFINITY
        } else {
            t_quantile_975(self.n - 1) * self.std_error()
        };
        Estimate {
            mean: self.mean(),
            ci_low: self.mean() - half,
            ci_high: self.mean() + half,
            n: self.n,
        }
    }
}

/// One trial's availability measurements, as produced by an
/// outage-bearing protocol trial (see `fortress_sim::outage`). Trials of
/// scenarios without an availability dimension (abstract, event-driven)
/// produce no point at all, so their sweep cells report empty
/// [`AvailStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvailPoint {
    /// Fraction of the trial's mission window (its step cap) during
    /// which the system delivered no correct service: steps with no
    /// live PB primary, plus every step after the compromise (a fallen
    /// system serves nothing trustworthy).
    pub downtime_fraction: f64,
    /// PB view changes (failovers) observed during the trial.
    pub failovers: f64,
    /// Mean steps from losing the serving primary to a backup serving
    /// again — `None` when the trial completed no failover.
    pub failover_latency: Option<f64>,
    /// Deliveries dead-lettered while a server machine was down
    /// (requests lost to the outage windows).
    pub lost_requests: f64,
    /// Client-side degradation measurements, carried only by trials
    /// that ran a goodput probe under a fault plan (`None` elsewhere, so
    /// fault-free cells accumulate nothing and report unchanged).
    pub degrade: Option<DegradePoint>,
    /// Fleet-level shard measurements, carried only by trials of sharded
    /// cells (`None` elsewhere, so single-group sweeps accumulate nothing
    /// and report unchanged).
    pub shard: Option<ShardPoint>,
    /// SMR repair-economics measurements, carried only by trials whose
    /// repair axis armed the S0 view-change/state-transfer accounting
    /// (`None` elsewhere, so legacy cells accumulate nothing and report
    /// unchanged).
    pub repair: Option<RepairPoint>,
}

/// One trial's SMR repair-economics measurements, produced by the
/// repair-axis drive loop (see `fortress_sim::outage::RepairDriver`).
/// Carried only by cells whose repair axis is non-vacuous. RNG-free by
/// construction: read off the stack's `Availability` counters and
/// `TransferScheduler` at trial end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairPoint {
    /// VSR view changes completed during the trial (leader crashes that
    /// the StartViewChange / DoViewChange / StartView exchange resolved,
    /// plus any escalations past dead successors).
    pub view_changes: f64,
    /// Mean steps from losing the serving leader to a successor serving
    /// again — `None` when the trial completed no view change.
    pub view_change_latency: Option<f64>,
    /// State-transfer units paid by rejoining replicas (each unit is one
    /// log entry of divergence drained through the bandwidth budget).
    pub transfer_units: f64,
    /// Peak depth of the bounded-bandwidth transfer queue — > 1 only
    /// when a recovery storm made rejoiners contend.
    pub storm_queue_depth: f64,
}

/// One trial's fleet-level shard measurements, produced by the sharded
/// drive loop (see `fortress_sim::fleet_mc`). Carried only by cells whose
/// shard axis is non-vacuous.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardPoint {
    /// Steps until the *hottest* shard's group fell (the mission-window
    /// cap when it survived) — the observable the cross-shard placement
    /// question is about.
    pub hot_lifetime: f64,
    /// Fraction of issued workload requests routed to the hottest shard
    /// (a direct read of the Zipf skew through the shard directory).
    pub hot_load_fraction: f64,
    /// In-flight requests re-routed to a new owner by a mid-trial
    /// rebalance (0 for trials without a rebalance event).
    pub moved_requests: f64,
    /// Fortress groups whose compromise condition held by trial end.
    pub groups_fallen: f64,
}

/// One trial's client-degradation measurements, produced by the goodput
/// probe a fault-axis cell runs beside the adversary (see
/// `fortress_sim::faults`). RNG-free by construction: computed from the
/// probe's `Degradation` counters at trial end.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradePoint {
    /// Fraction of issued probe requests that got an accepted answer.
    pub goodput_fraction: f64,
    /// Mean retransmissions per issued request.
    pub retries_per_request: f64,
    /// Redundant replies suppressed by request nonce.
    pub duplicates_suppressed: f64,
    /// Requests abandoned after exhausting the retry budget (plus the
    /// unanswered tail at the mission window's end).
    pub gave_up: f64,
}

/// Welford accumulators for the availability metrics of one sweep cell,
/// merged chunk-by-chunk alongside the lifetime statistics with the same
/// fixed reduction order — so availability reports are bit-identical at
/// any thread count, exactly like the lifetimes.
///
/// `failover_latency` only accumulates trials that completed at least
/// one failover, so its `n()` may be smaller than the other metrics'.
/// The degradation accumulators likewise only see trials whose
/// [`AvailPoint::degrade`] is populated (fault-axis cells with a goodput
/// probe), so fault-free sweeps report them empty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvailStats {
    /// Per-trial downtime fraction.
    pub downtime: RunningStats,
    /// Per-trial failover count.
    pub failovers: RunningStats,
    /// Per-trial mean failover latency (steps), trials with ≥ 1 failover.
    pub failover_latency: RunningStats,
    /// Per-trial requests lost during outage windows.
    pub lost: RunningStats,
    /// Per-trial goodput fraction, fault-axis trials only.
    pub goodput: RunningStats,
    /// Per-trial retransmissions per request, fault-axis trials only.
    pub retries: RunningStats,
    /// Per-trial duplicates suppressed, fault-axis trials only.
    pub dup_suppressed: RunningStats,
    /// Per-trial gave-up requests, fault-axis trials only.
    pub gave_up: RunningStats,
    /// Per-trial hottest-shard lifetime, sharded trials only.
    pub hot_lifetime: RunningStats,
    /// Per-trial hottest-shard load fraction, sharded trials only.
    pub hot_load: RunningStats,
    /// Per-trial rebalance-moved requests, sharded trials only.
    pub moved: RunningStats,
    /// Per-trial fallen-group count, sharded trials only.
    pub groups_fallen: RunningStats,
    /// Per-trial completed view changes, repair-axis trials only.
    pub view_changes: RunningStats,
    /// Per-trial mean view-change latency (steps), repair-axis trials
    /// with ≥ 1 completed view change only.
    pub view_change_latency: RunningStats,
    /// Per-trial state-transfer units paid, repair-axis trials only.
    pub transfer_units: RunningStats,
    /// Per-trial peak transfer-queue depth, repair-axis trials only.
    pub storm_queue: RunningStats,
}

impl Default for AvailStats {
    /// [`AvailStats::new`] — empty accumulators with proper min/max
    /// sentinels, not zeroed fields.
    fn default() -> AvailStats {
        AvailStats::new()
    }
}

impl AvailStats {
    /// An empty accumulator.
    pub fn new() -> AvailStats {
        AvailStats {
            downtime: RunningStats::new(),
            failovers: RunningStats::new(),
            failover_latency: RunningStats::new(),
            lost: RunningStats::new(),
            goodput: RunningStats::new(),
            retries: RunningStats::new(),
            dup_suppressed: RunningStats::new(),
            gave_up: RunningStats::new(),
            hot_lifetime: RunningStats::new(),
            hot_load: RunningStats::new(),
            moved: RunningStats::new(),
            groups_fallen: RunningStats::new(),
            view_changes: RunningStats::new(),
            view_change_latency: RunningStats::new(),
            transfer_units: RunningStats::new(),
            storm_queue: RunningStats::new(),
        }
    }

    /// Adds one trial's measurements.
    pub fn push(&mut self, point: &AvailPoint) {
        self.downtime.push(point.downtime_fraction);
        self.failovers.push(point.failovers);
        if let Some(latency) = point.failover_latency {
            self.failover_latency.push(latency);
        }
        self.lost.push(point.lost_requests);
        if let Some(d) = point.degrade {
            self.goodput.push(d.goodput_fraction);
            self.retries.push(d.retries_per_request);
            self.dup_suppressed.push(d.duplicates_suppressed);
            self.gave_up.push(d.gave_up);
        }
        if let Some(s) = point.shard {
            self.hot_lifetime.push(s.hot_lifetime);
            self.hot_load.push(s.hot_load_fraction);
            self.moved.push(s.moved_requests);
            self.groups_fallen.push(s.groups_fallen);
        }
        if let Some(r) = point.repair {
            self.view_changes.push(r.view_changes);
            if let Some(latency) = r.view_change_latency {
                self.view_change_latency.push(latency);
            }
            self.transfer_units.push(r.transfer_units);
            self.storm_queue.push(r.storm_queue_depth);
        }
    }

    /// Merges another accumulator into this one, metric by metric (the
    /// same parallel-Welford combination as [`RunningStats::merge`]).
    pub fn merge(&mut self, other: &AvailStats) {
        self.downtime.merge(&other.downtime);
        self.failovers.merge(&other.failovers);
        self.failover_latency.merge(&other.failover_latency);
        self.lost.merge(&other.lost);
        self.goodput.merge(&other.goodput);
        self.retries.merge(&other.retries);
        self.dup_suppressed.merge(&other.dup_suppressed);
        self.gave_up.merge(&other.gave_up);
        self.hot_lifetime.merge(&other.hot_lifetime);
        self.hot_load.merge(&other.hot_load);
        self.moved.merge(&other.moved);
        self.groups_fallen.merge(&other.groups_fallen);
        self.view_changes.merge(&other.view_changes);
        self.view_change_latency.merge(&other.view_change_latency);
        self.transfer_units.merge(&other.transfer_units);
        self.storm_queue.merge(&other.storm_queue);
    }

    /// Whether no trial contributed availability measurements (cells of
    /// scenarios without an availability dimension).
    pub fn is_empty(&self) -> bool {
        self.downtime.n() == 0
    }
}

/// A mean with a 95% confidence interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound of the 95% CI.
    pub ci_low: f64,
    /// Upper bound of the 95% CI.
    pub ci_high: f64,
    /// Sample size.
    pub n: u64,
}

impl Estimate {
    /// Whether `value` falls inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.ci_low && value <= self.ci_high
    }

    /// Half-width of the interval relative to the mean.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        (self.ci_high - self.ci_low) / 2.0 / self.mean.abs()
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom.
///
/// Exact table entries for small `df`, the normal limit elsewhere — within
/// a percent of the true quantile for every `df`, which is far below the
/// Monte-Carlo noise it brackets.
fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [f64; 31] = [
        f64::INFINITY, // df = 0 sentinel
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d as usize],
        d if d <= 60 => 2.00,
        d if d <= 120 => 1.98,
        _ => 1.96,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.n(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
        // df = 0: interval is unbounded, honestly reflecting ignorance.
        assert!(s.estimate().ci_high.is_infinite());
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut s = RunningStats::new();
        for x in &data {
            s.push(*x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-6);
    }

    #[test]
    fn ci_covers_true_mean_for_uniform_noise() {
        // Deterministic LCG noise around mean 0.5.
        let mut seed = 1u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let mut s = RunningStats::new();
        for _ in 0..500 {
            s.push(next());
        }
        let est = s.estimate();
        assert!(est.contains(0.5), "{est:?}");
        assert!(est.relative_half_width() < 0.1);
    }

    #[test]
    fn t_quantiles_decrease_towards_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert!(t_quantile_975(30) > t_quantile_975(1000));
        assert!((t_quantile_975(1_000_000) - 1.96).abs() < 1e-12);
    }

    #[test]
    fn estimate_contains() {
        let e = Estimate {
            mean: 10.0,
            ci_low: 9.0,
            ci_high: 11.0,
            n: 100,
        };
        assert!(e.contains(9.5));
        assert!(!e.contains(8.0));
        assert!((e.relative_half_width() - 0.1).abs() < 1e-12);
    }
}
