//! Event-driven lifetime sampling: O(1) per trial.
//!
//! Rather than walking steps, each trial samples the *discovery step* of
//! every relevant key directly from its distribution and combines them:
//!
//! * **SO** (without replacement): a key's position in the attacker's probe
//!   order is uniform over `{1..χ}`, so its discovery step is
//!   `⌈position/ω⌉`. S0 takes the 2nd order statistic of four positions;
//!   S2 splices the server stream's rate change at the first proxy fall
//!   (the launch pad).
//! * **PO** (with replacement): per-step compromise probabilities are the
//!   geometric parameters from `fortress-model`, sampled by inversion.
//!
//! Equality in distribution with the step-by-step engine is asserted by
//! tests in both modules; this engine is what makes simulating expected
//! lifetimes of ~10⁶ steps (Figure 1's small-α corner) instantaneous.

use fortress_markov::LaunchPad;
use fortress_model::params::{AttackParams, Policy, ProbeModel};
use fortress_model::{survival, SystemKind};
use rand::Rng;

/// Samples a geometric step count (1-based) with success probability `p`
/// by inversion.
///
/// The denominator is `ln(1−p)` computed as `(−p).ln_1p()`: for the tiny
/// `p` of the small-α corner (`p ≈ 10⁻⁹` and below), `(1.0 - p).ln()`
/// rounds `1.0 - p` to 1 and collapses to `ln(1) = 0`, turning the
/// division into ±inf; `ln_1p` keeps full precision down to the smallest
/// subnormal `p`.
fn sample_geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    if p >= 1.0 {
        return 1;
    }
    if p <= 0.0 {
        return u64::MAX;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let steps = u.ln() / (-p).ln_1p();
    if steps >= u64::MAX as f64 {
        return u64::MAX;
    }
    steps.ceil().max(1.0) as u64
}

/// Samples the discovery step of a key probed at `rate` values per step
/// out of a pool of `chi` (without replacement): position uniform, step =
/// ⌈position/rate⌉.
fn sample_discovery_step<R: Rng + ?Sized>(chi: f64, rate: f64, rng: &mut R) -> u64 {
    let position = rng.gen::<f64>() * chi;
    (position / rate).ceil().max(1.0) as u64
}

/// Samples one system lifetime (whole unit time-steps until compromise).
///
/// For S2 under SO, `launch_pad` selects the paper semantics
/// ([`LaunchPad::NextStep`]) or the ablation ([`LaunchPad::Disabled`]).
pub fn sample_lifetime<R: Rng + ?Sized>(
    kind: SystemKind,
    policy: Policy,
    params: &AttackParams,
    launch_pad: LaunchPad,
    rng: &mut R,
) -> u64 {
    let chi = params.chi();
    let omega = params.omega();
    match (kind, policy) {
        (SystemKind::S1Pb, Policy::Proactive) => {
            sample_geometric(survival::s1_po_step(params, ProbeModel::Broadcast), rng)
        }
        (SystemKind::S0Smr, Policy::Proactive) => {
            sample_geometric(survival::s0_po_step(params, ProbeModel::Broadcast), rng)
        }
        (SystemKind::S2Fortress { kappa }, Policy::Proactive) => sample_geometric(
            survival::s2_po_step(params, ProbeModel::Broadcast, kappa),
            rng,
        ),
        (SystemKind::S1Pb, Policy::StartupOnly) => sample_discovery_step(chi, omega, rng),
        (SystemKind::S0Smr, Policy::StartupOnly) => {
            // Fixed-size arrays keep the hot path allocation-free; the
            // runner executes this millions of times per figure.
            let mut steps = [0u64; 4];
            for s in &mut steps {
                *s = sample_discovery_step(chi, omega, rng);
            }
            steps.sort_unstable();
            steps[1] // second key uncovered compromises S0
        }
        (SystemKind::S2Fortress { kappa }, Policy::StartupOnly) => {
            // Proxy discovery steps (distinct keys, shared probe stream).
            let mut proxies = [0u64; 3];
            for p in &mut proxies {
                *p = sample_discovery_step(chi, omega, rng);
            }
            proxies.sort_unstable();
            let first_proxy = proxies[0];
            let all_proxies = proxies[2];

            // Server key position in its own probe order.
            let server_position = rng.gen::<f64>() * chi;
            let indirect_rate = kappa * omega;
            let server_step = match launch_pad {
                LaunchPad::Disabled => {
                    if indirect_rate <= 0.0 {
                        u64::MAX
                    } else {
                        (server_position / indirect_rate).ceil().max(1.0) as u64
                    }
                }
                LaunchPad::NextStep => {
                    // Indirect rate until the pad activates, then (1+κ)ω.
                    let eliminated_at_pad = indirect_rate * first_proxy as f64;
                    if server_position < eliminated_at_pad {
                        (server_position / indirect_rate).ceil().max(1.0) as u64
                    } else {
                        let pad_rate = (1.0 + kappa) * omega;
                        let extra = (server_position - eliminated_at_pad) / pad_rate;
                        (first_proxy as f64 + extra.max(0.0)).ceil().max(1.0) as u64
                    }
                }
            };
            server_step.min(all_proxies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, TrialBudget};
    use crate::stats::RunningStats;
    use fortress_model::lifetime::{expected_lifetime, expected_lifetime_s2_so};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mc_mean(
        kind: SystemKind,
        policy: Policy,
        params: &AttackParams,
        pad: LaunchPad,
        trials: u64,
        seed: u64,
    ) -> f64 {
        let params = *params;
        Runner::new()
            .run(seed, TrialBudget::Fixed(trials), move |_, rng| {
                sample_lifetime(kind, policy, &params, pad, rng) as f64
            })
            .mean()
    }

    fn params(alpha: f64) -> AttackParams {
        AttackParams::from_alpha(65536.0, alpha).unwrap()
    }

    #[test]
    fn matches_analytic_for_every_system_policy_pair() {
        let p = params(1e-3);
        let cases: Vec<(SystemKind, Policy)> = vec![
            (SystemKind::S1Pb, Policy::Proactive),
            (SystemKind::S1Pb, Policy::StartupOnly),
            (SystemKind::S0Smr, Policy::Proactive),
            (SystemKind::S0Smr, Policy::StartupOnly),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::Proactive),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::StartupOnly),
        ];
        for (seed, (kind, policy)) in cases.into_iter().enumerate() {
            let analytic =
                expected_lifetime(kind, policy, ProbeModel::Broadcast, &p).unwrap();
            let trials = if analytic > 1e5 { 40_000 } else { 20_000 };
            let mc = mc_mean(kind, policy, &p, LaunchPad::NextStep, trials, seed as u64);
            let rel = (mc - analytic).abs() / analytic;
            assert!(
                rel < 0.05,
                "{kind:?}/{policy:?}: MC {mc} vs analytic {analytic} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn event_driven_is_fast_for_tiny_alpha() {
        // EL(S0PO) at alpha = 1e-5 is ~1.7e9 steps; the sampler must not care.
        let p = params(1e-5);
        let mc = mc_mean(
            SystemKind::S0Smr,
            Policy::Proactive,
            &p,
            LaunchPad::NextStep,
            10_000,
            9,
        );
        let analytic =
            expected_lifetime(SystemKind::S0Smr, Policy::Proactive, ProbeModel::Broadcast, &p)
                .unwrap();
        assert!(
            (mc - analytic).abs() / analytic < 0.1,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn s2_so_pad_matches_analytic() {
        let p = params(1e-3);
        for kappa in [0.1, 0.5, 0.9] {
            let analytic = expected_lifetime_s2_so(&p, kappa, LaunchPad::NextStep);
            let mc = mc_mean(
                SystemKind::S2Fortress { kappa },
                Policy::StartupOnly,
                &p,
                LaunchPad::NextStep,
                20_000,
                11,
            );
            let rel = (mc - analytic).abs() / analytic;
            assert!(rel < 0.05, "kappa {kappa}: MC {mc} vs analytic {analytic}");
        }
    }

    #[test]
    fn s2_so_kappa_zero_disabled_is_pure_proxy_race() {
        let p = params(1e-2);
        let mc = mc_mean(
            SystemKind::S2Fortress { kappa: 0.0 },
            Policy::StartupOnly,
            &p,
            LaunchPad::Disabled,
            20_000,
            13,
        );
        // Max of 3 uniforms over T_p = 100 steps: mean 3/4 · 100 = 75.
        let t_p = p.chi() / p.omega();
        assert!((mc - 0.75 * t_p).abs() / (0.75 * t_p) < 0.05, "{mc}");
    }

    #[test]
    fn geometric_sampler_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_geometric(1.0, &mut rng), 1);
        assert_eq!(sample_geometric(0.0, &mut rng), u64::MAX);
        // Mean check for p = 0.25.
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sample_geometric(0.25, &mut rng) as f64);
        }
        assert!((stats.mean() - 4.0).abs() < 0.15, "{}", stats.mean());
    }

    #[test]
    fn geometric_sampler_survives_tiny_p() {
        // ln(1 - p) naively evaluates to 0 once p < 2⁻⁵³; the ln_1p form
        // must keep producing finite, unbiased step counts. Mean of the
        // geometric is 1/p = 2⁶⁰; check the log-scale magnitude.
        let mut rng = StdRng::seed_from_u64(2);
        let p = (2.0f64).powi(-60);
        let mut stats = RunningStats::new();
        for _ in 0..2_000 {
            let steps = sample_geometric(p, &mut rng);
            assert!(steps < u64::MAX, "inversion overflowed");
            stats.push((steps as f64).ln());
        }
        // E[ln X] = ln(1/p) − γ for an exponential; γ ≈ 0.5772.
        let expected = (1.0 / p).ln() - 0.5772;
        assert!(
            (stats.mean() - expected).abs() < 0.1,
            "mean log-lifetime {} vs {expected}",
            stats.mean()
        );
    }

    #[test]
    fn paper_trends_reproduced_by_sampling() {
        // The §6 ordering at alpha = 1e-3, kappa = 0.5, via simulation only.
        let p = params(1e-3);
        let pad = LaunchPad::NextStep;
        let s0po = mc_mean(SystemKind::S0Smr, Policy::Proactive, &p, pad, 30_000, 21);
        let s2po = mc_mean(
            SystemKind::S2Fortress { kappa: 0.5 },
            Policy::Proactive,
            &p,
            pad,
            30_000,
            22,
        );
        let s1po = mc_mean(SystemKind::S1Pb, Policy::Proactive, &p, pad, 30_000, 23);
        let s1so = mc_mean(SystemKind::S1Pb, Policy::StartupOnly, &p, pad, 30_000, 24);
        let s0so = mc_mean(SystemKind::S0Smr, Policy::StartupOnly, &p, pad, 30_000, 25);
        assert!(
            s0po > s2po && s2po > s1po && s1po > s1so && s1so > s0so,
            "ordering violated: S0PO={s0po} S2PO={s2po} S1PO={s1po} S1SO={s1so} S0SO={s0so}"
        );
    }
}
