//! Event-driven lifetime sampling: O(1) per trial.
//!
//! Rather than walking steps, each trial samples the *discovery step* of
//! every relevant key directly from its distribution and combines them:
//!
//! * **SO** (without replacement): a key's position in the attacker's probe
//!   order is uniform over `{1..χ}`, so its discovery step is
//!   `⌈position/ω⌉`. S0 takes the 2nd order statistic of four positions;
//!   S2 splices the server stream's rate change at the first proxy fall
//!   (the launch pad).
//! * **PO** (with replacement): per-step compromise probabilities are the
//!   geometric parameters from `fortress-model`, sampled by inversion.
//!
//! Equality in distribution with the step-by-step engine is asserted by
//! tests in both modules; this engine is what makes simulating expected
//! lifetimes of ~10⁶ steps (Figure 1's small-α corner) instantaneous.

use crate::runner::trial_seed;
use fortress_markov::LaunchPad;
use fortress_model::params::{AttackParams, Policy, ProbeModel};
use fortress_model::{survival, SystemKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A geometric hazard with its log-survival denominator precomputed —
/// the table-driven form of [`sample_geometric`].
///
/// The denominator is `ln(1−p)` computed as `(−p).ln_1p()`: for the tiny
/// `p` of the small-α corner (`p ≈ 10⁻⁹` and below), `(1.0 - p).ln()`
/// rounds `1.0 - p` to 1 and collapses to `ln(1) = 0`, turning the
/// division into ±inf; `ln_1p` keeps full precision down to the smallest
/// subnormal `p`.
///
/// Within a campaign cell `p` is a constant, so the `ln_1p` call — by far
/// the most expensive instruction of a draw — can be hoisted out of the
/// trial loop. Two invariants keep the table bit-identical to the
/// per-call path:
///
/// * The cached value is the **denominator**, and [`HazardTable::sample`]
///   still divides by it. Caching the *reciprocal* and multiplying would
///   round differently (two roundings instead of one) and silently break
///   every golden that pins lifetimes.
/// * [`HazardTable::sample_block`] seeds draw `k` from
///   [`trial_seed`]`(base_seed, start + k)` — exactly the counter-based
///   per-trial seeding of [`crate::runner::Runner`] — so a block of `n`
///   draws equals `n` independent runner trials, regardless of how the
///   block is split across threads or chunks.
#[derive(Clone, Copy, Debug)]
pub struct HazardTable {
    p: f64,
    /// `ln(1 − p)` via `ln_1p`; meaningful only for `0 < p < 1`.
    ln_q: f64,
}

impl HazardTable {
    /// Builds the table for per-step success probability `p`.
    pub fn new(p: f64) -> HazardTable {
        HazardTable { p, ln_q: (-p).ln_1p() }
    }

    /// The success probability this table was built for.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Samples one geometric step count (1-based) by inversion —
    /// bit-identical to [`sample_geometric`]`(self.p(), rng)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        if self.p <= 0.0 {
            return u64::MAX;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let steps = u.ln() / self.ln_q;
        if steps >= u64::MAX as f64 {
            return u64::MAX;
        }
        steps.ceil().max(1.0) as u64
    }

    /// Fills `out[k]` with the draw of trial `start + k` under
    /// `base_seed`: each slot gets its own counter-seeded [`SmallRng`]
    /// (the runner's seeding rule), so block boundaries cannot affect
    /// values — `sample_block(s, 0, &mut buf[..n])` splits into any
    /// partition of sub-blocks and produces identical bits.
    ///
    /// The degenerate hazards are hoisted: the block body runs the
    /// branch-free inversion only, with `p` classified once per call
    /// rather than once per draw.
    pub fn sample_block(&self, base_seed: u64, start: u64, out: &mut [u64]) {
        if self.p >= 1.0 {
            out.fill(1);
            return;
        }
        if self.p <= 0.0 {
            out.fill(u64::MAX);
            return;
        }
        for (k, slot) in out.iter_mut().enumerate() {
            let mut rng = SmallRng::seed_from_u64(trial_seed(base_seed, start + k as u64));
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let steps = u.ln() / self.ln_q;
            *slot = if steps >= u64::MAX as f64 {
                u64::MAX
            } else {
                steps.ceil().max(1.0) as u64
            };
        }
    }
}

/// Samples a geometric step count (1-based) with success probability `p`
/// by inversion. One-shot form of [`HazardTable`] — the table is the
/// single definition of the arithmetic, so the two are bit-identical.
fn sample_geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> u64 {
    HazardTable::new(p).sample(rng)
}

/// Samples the discovery step of a key probed at `rate` values per step
/// out of a pool of `chi` (without replacement): position uniform, step =
/// ⌈position/rate⌉.
fn sample_discovery_step<R: Rng + ?Sized>(chi: f64, rate: f64, rng: &mut R) -> u64 {
    let position = rng.gen::<f64>() * chi;
    (position / rate).ceil().max(1.0) as u64
}

/// Samples one system lifetime (whole unit time-steps until compromise).
///
/// For S2 under SO, `launch_pad` selects the paper semantics
/// ([`LaunchPad::NextStep`]) or the ablation ([`LaunchPad::Disabled`]).
pub fn sample_lifetime<R: Rng + ?Sized>(
    kind: SystemKind,
    policy: Policy,
    params: &AttackParams,
    launch_pad: LaunchPad,
    rng: &mut R,
) -> u64 {
    let chi = params.chi();
    let omega = params.omega();
    match (kind, policy) {
        (SystemKind::S1Pb, Policy::Proactive) => {
            sample_geometric(survival::s1_po_step(params, ProbeModel::Broadcast), rng)
        }
        (SystemKind::S0Smr, Policy::Proactive) => {
            sample_geometric(survival::s0_po_step(params, ProbeModel::Broadcast), rng)
        }
        (SystemKind::S2Fortress { kappa }, Policy::Proactive) => sample_geometric(
            survival::s2_po_step(params, ProbeModel::Broadcast, kappa),
            rng,
        ),
        (SystemKind::S1Pb, Policy::StartupOnly) => sample_discovery_step(chi, omega, rng),
        (SystemKind::S0Smr, Policy::StartupOnly) => {
            // Fixed-size arrays keep the hot path allocation-free; the
            // runner executes this millions of times per figure.
            let mut steps = [0u64; 4];
            for s in &mut steps {
                *s = sample_discovery_step(chi, omega, rng);
            }
            steps.sort_unstable();
            steps[1] // second key uncovered compromises S0
        }
        (SystemKind::S2Fortress { kappa }, Policy::StartupOnly) => {
            // Proxy discovery steps (distinct keys, shared probe stream).
            let mut proxies = [0u64; 3];
            for p in &mut proxies {
                *p = sample_discovery_step(chi, omega, rng);
            }
            proxies.sort_unstable();
            let first_proxy = proxies[0];
            let all_proxies = proxies[2];

            // Server key position in its own probe order.
            let server_position = rng.gen::<f64>() * chi;
            let indirect_rate = kappa * omega;
            let server_step = match launch_pad {
                LaunchPad::Disabled => {
                    if indirect_rate <= 0.0 {
                        u64::MAX
                    } else {
                        (server_position / indirect_rate).ceil().max(1.0) as u64
                    }
                }
                LaunchPad::NextStep => {
                    // Indirect rate until the pad activates, then (1+κ)ω.
                    let eliminated_at_pad = indirect_rate * first_proxy as f64;
                    if server_position < eliminated_at_pad {
                        (server_position / indirect_rate).ceil().max(1.0) as u64
                    } else {
                        let pad_rate = (1.0 + kappa) * omega;
                        let extra = (server_position - eliminated_at_pad) / pad_rate;
                        (first_proxy as f64 + extra.max(0.0)).ceil().max(1.0) as u64
                    }
                }
            };
            server_step.min(all_proxies)
        }
    }
}

/// Samples the lifetimes of trials `start .. start + out.len()` under
/// `base_seed` into `out` — the batched form of running
/// [`sample_lifetime`] once per trial through the
/// [runner](crate::runner::Runner), and bit-identical to it: slot `k` is
/// exactly what a runner trial with index `start + k` draws, because both
/// seed the trial's [`SmallRng`] from [`trial_seed`]`(base_seed, start + k)`.
///
/// Under [`Policy::Proactive`] the whole lifetime is one geometric draw,
/// so the block goes through a [`HazardTable`] built once per call: the
/// `ln_1p` of the hazard is computed once instead of once per trial, and
/// the inner loop is branch-free. [`Policy::StartupOnly`] lifetimes
/// combine several draws, so they fall back to per-trial
/// [`sample_lifetime`] (still counter-seeded, still bit-identical).
pub fn sample_lifetime_block(
    kind: SystemKind,
    policy: Policy,
    params: &AttackParams,
    launch_pad: LaunchPad,
    base_seed: u64,
    start: u64,
    out: &mut [u64],
) {
    if policy == Policy::Proactive {
        let p = match kind {
            SystemKind::S1Pb => survival::s1_po_step(params, ProbeModel::Broadcast),
            SystemKind::S0Smr => survival::s0_po_step(params, ProbeModel::Broadcast),
            SystemKind::S2Fortress { kappa } => {
                survival::s2_po_step(params, ProbeModel::Broadcast, kappa)
            }
        };
        HazardTable::new(p).sample_block(base_seed, start, out);
        return;
    }
    for (k, slot) in out.iter_mut().enumerate() {
        let mut rng = SmallRng::seed_from_u64(trial_seed(base_seed, start + k as u64));
        *slot = sample_lifetime(kind, policy, params, launch_pad, &mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, TrialBudget};
    use crate::stats::RunningStats;
    use fortress_model::lifetime::{expected_lifetime, expected_lifetime_s2_so};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mc_mean(
        kind: SystemKind,
        policy: Policy,
        params: &AttackParams,
        pad: LaunchPad,
        trials: u64,
        seed: u64,
    ) -> f64 {
        let params = *params;
        Runner::new()
            .run(seed, TrialBudget::Fixed(trials), move |_, rng| {
                sample_lifetime(kind, policy, &params, pad, rng) as f64
            })
            .mean()
    }

    fn params(alpha: f64) -> AttackParams {
        AttackParams::from_alpha(65536.0, alpha).unwrap()
    }

    #[test]
    fn matches_analytic_for_every_system_policy_pair() {
        let p = params(1e-3);
        let cases: Vec<(SystemKind, Policy)> = vec![
            (SystemKind::S1Pb, Policy::Proactive),
            (SystemKind::S1Pb, Policy::StartupOnly),
            (SystemKind::S0Smr, Policy::Proactive),
            (SystemKind::S0Smr, Policy::StartupOnly),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::Proactive),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::StartupOnly),
        ];
        for (seed, (kind, policy)) in cases.into_iter().enumerate() {
            let analytic =
                expected_lifetime(kind, policy, ProbeModel::Broadcast, &p).unwrap();
            let trials = if analytic > 1e5 { 40_000 } else { 20_000 };
            let mc = mc_mean(kind, policy, &p, LaunchPad::NextStep, trials, seed as u64);
            let rel = (mc - analytic).abs() / analytic;
            assert!(
                rel < 0.05,
                "{kind:?}/{policy:?}: MC {mc} vs analytic {analytic} (rel {rel:.3})"
            );
        }
    }

    #[test]
    fn event_driven_is_fast_for_tiny_alpha() {
        // EL(S0PO) at alpha = 1e-5 is ~1.7e9 steps; the sampler must not care.
        let p = params(1e-5);
        let mc = mc_mean(
            SystemKind::S0Smr,
            Policy::Proactive,
            &p,
            LaunchPad::NextStep,
            10_000,
            9,
        );
        let analytic =
            expected_lifetime(SystemKind::S0Smr, Policy::Proactive, ProbeModel::Broadcast, &p)
                .unwrap();
        assert!(
            (mc - analytic).abs() / analytic < 0.1,
            "MC {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn s2_so_pad_matches_analytic() {
        let p = params(1e-3);
        for kappa in [0.1, 0.5, 0.9] {
            let analytic = expected_lifetime_s2_so(&p, kappa, LaunchPad::NextStep);
            let mc = mc_mean(
                SystemKind::S2Fortress { kappa },
                Policy::StartupOnly,
                &p,
                LaunchPad::NextStep,
                20_000,
                11,
            );
            let rel = (mc - analytic).abs() / analytic;
            assert!(rel < 0.05, "kappa {kappa}: MC {mc} vs analytic {analytic}");
        }
    }

    #[test]
    fn s2_so_kappa_zero_disabled_is_pure_proxy_race() {
        let p = params(1e-2);
        let mc = mc_mean(
            SystemKind::S2Fortress { kappa: 0.0 },
            Policy::StartupOnly,
            &p,
            LaunchPad::Disabled,
            20_000,
            13,
        );
        // Max of 3 uniforms over T_p = 100 steps: mean 3/4 · 100 = 75.
        let t_p = p.chi() / p.omega();
        assert!((mc - 0.75 * t_p).abs() / (0.75 * t_p) < 0.05, "{mc}");
    }

    #[test]
    fn geometric_sampler_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_geometric(1.0, &mut rng), 1);
        assert_eq!(sample_geometric(0.0, &mut rng), u64::MAX);
        // Mean check for p = 0.25.
        let mut stats = RunningStats::new();
        for _ in 0..20_000 {
            stats.push(sample_geometric(0.25, &mut rng) as f64);
        }
        assert!((stats.mean() - 4.0).abs() < 0.15, "{}", stats.mean());
    }

    #[test]
    fn geometric_sampler_survives_tiny_p() {
        // ln(1 - p) naively evaluates to 0 once p < 2⁻⁵³; the ln_1p form
        // must keep producing finite, unbiased step counts. Mean of the
        // geometric is 1/p = 2⁶⁰; check the log-scale magnitude.
        let mut rng = StdRng::seed_from_u64(2);
        let p = (2.0f64).powi(-60);
        let mut stats = RunningStats::new();
        for _ in 0..2_000 {
            let steps = sample_geometric(p, &mut rng);
            assert!(steps < u64::MAX, "inversion overflowed");
            stats.push((steps as f64).ln());
        }
        // E[ln X] = ln(1/p) − γ for an exponential; γ ≈ 0.5772.
        let expected = (1.0 / p).ln() - 0.5772;
        assert!(
            (stats.mean() - expected).abs() < 0.1,
            "mean log-lifetime {} vs {expected}",
            stats.mean()
        );
    }

    #[test]
    fn hazard_table_matches_sample_geometric_bit_for_bit() {
        // The table caches the ln_1p denominator; the draw arithmetic
        // must stay bit-identical across the whole p range, including
        // the subnormal-adjacent corner the ln_1p form exists for.
        for (i, p) in [0.9, 0.25, 1e-3, 1e-9, (2.0f64).powi(-60)].into_iter().enumerate() {
            let table = HazardTable::new(p);
            let mut a = StdRng::seed_from_u64(100 + i as u64);
            let mut b = StdRng::seed_from_u64(100 + i as u64);
            for _ in 0..1_000 {
                assert_eq!(sample_geometric(p, &mut a), table.sample(&mut b), "p = {p}");
            }
        }
    }

    #[test]
    fn block_mode_matches_per_trial_runner_seeding_bit_for_bit() {
        // A block of n draws must equal n counter-seeded runner trials
        // for every system/policy pair — the seeding rule is the whole
        // contract.
        use crate::runner::trial_seed;
        use rand::rngs::SmallRng;
        let p = params(1e-3);
        let cases: Vec<(SystemKind, Policy)> = vec![
            (SystemKind::S1Pb, Policy::Proactive),
            (SystemKind::S0Smr, Policy::Proactive),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::Proactive),
            (SystemKind::S1Pb, Policy::StartupOnly),
            (SystemKind::S0Smr, Policy::StartupOnly),
            (SystemKind::S2Fortress { kappa: 0.5 }, Policy::StartupOnly),
        ];
        for (kind, policy) in cases {
            let base = 0xB10C;
            let mut block = [0u64; 256];
            sample_lifetime_block(kind, policy, &p, LaunchPad::NextStep, base, 0, &mut block);
            for (t, &got) in block.iter().enumerate() {
                let mut rng = SmallRng::seed_from_u64(trial_seed(base, t as u64));
                let want = sample_lifetime(kind, policy, &p, LaunchPad::NextStep, &mut rng);
                assert_eq!(got, want, "{kind:?}/{policy:?} trial {t}");
            }
        }
    }

    #[test]
    fn block_boundaries_cannot_change_draws() {
        // Counter-based seeding makes the block partition irrelevant:
        // one 512-draw block equals any split into sub-blocks, which is
        // what lets parallel workers (and work stealing) carve a cell's
        // trial range at arbitrary chunk boundaries.
        let table = HazardTable::new(1e-4);
        let base = 77;
        let mut whole = [0u64; 512];
        table.sample_block(base, 0, &mut whole);
        let mut split = [0u64; 512];
        for (lo, hi) in [(0usize, 100), (100, 101), (101, 400), (400, 512)] {
            table.sample_block(base, lo as u64, &mut split[lo..hi]);
        }
        assert_eq!(whole, split);
    }

    #[test]
    fn degenerate_hazards_fill_blocks() {
        let mut out = [7u64; 16];
        HazardTable::new(1.0).sample_block(1, 0, &mut out);
        assert_eq!(out, [1u64; 16]);
        HazardTable::new(0.0).sample_block(1, 0, &mut out);
        assert_eq!(out, [u64::MAX; 16]);
    }

    #[test]
    fn paper_trends_reproduced_by_sampling() {
        // The §6 ordering at alpha = 1e-3, kappa = 0.5, via simulation only.
        let p = params(1e-3);
        let pad = LaunchPad::NextStep;
        let s0po = mc_mean(SystemKind::S0Smr, Policy::Proactive, &p, pad, 30_000, 21);
        let s2po = mc_mean(
            SystemKind::S2Fortress { kappa: 0.5 },
            Policy::Proactive,
            &p,
            pad,
            30_000,
            22,
        );
        let s1po = mc_mean(SystemKind::S1Pb, Policy::Proactive, &p, pad, 30_000, 23);
        let s1so = mc_mean(SystemKind::S1Pb, Policy::StartupOnly, &p, pad, 30_000, 24);
        let s0so = mc_mean(SystemKind::S0Smr, Policy::StartupOnly, &p, pad, 30_000, 25);
        assert!(
            s0po > s2po && s2po > s1po && s1po > s1so && s1so > s0so,
            "ordering violated: S0PO={s0po} S2PO={s2po} S1PO={s1po} S1SO={s1so} S0SO={s0so}"
        );
    }
}
