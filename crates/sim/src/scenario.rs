//! One experiment surface over every fidelity: the unified `Scenario`
//! API and its cell-parallel sweep scheduler.
//!
//! The paper's resilience claims are comparisons *across scenarios* —
//! bare PB vs fortified, SO vs PO, abstract κ predictions vs
//! protocol-level runs — and survivability methodology (Ellison et al.)
//! insists such claims be assessed as systematic sweeps over
//! usage/intrusion scenarios, not point samples. This module is that
//! sweep surface:
//!
//! * [`Scenario`] — the object-safe unit contract: a label and
//!   `run_once(seed) → lifetime`. Implemented by [`AbstractModel`]
//!   (step-by-step hazards), [`ProtocolExperiment`] (real stacks under
//!   the baseline attacker), and [`ScenarioSpec`] (which adds
//!   event-driven sampling and campaign cells with an explicit
//!   adversary strategy). Every implementor is a pure function of its
//!   seed, which is what lets one scheduler run them all
//!   deterministically.
//! * [`ScenarioSpec`] — the declarative, `Copy` coordinate of one cell,
//!   with a content-derived seed ([`ScenarioSpec::content_seed`]): two
//!   cells differing in *any* parameter draw decorrelated trial
//!   streams, and reordering or subsetting a sweep cannot change any
//!   cell's trials.
//! * [`SweepSpec`] — the axis builder: system class × service-order
//!   policy (SO/PO) × entropy χ × suspicion policy × fleet size ×
//!   adversary strategy × outage schedule (the availability axis) ×
//!   fault schedule (the network-fault axis), compiled to a flat list
//!   of seeded [`SweepCell`]s.
//! * [`SweepScheduler`] — runs cells as first-class jobs on the
//!   persistent [`Runner`] pool. Cells and trials share one pool
//!   through a two-level work queue (see below), so the embarrassingly
//!   parallel grid no longer serializes at the cell level — the
//!   restriction [`RunnerError::NestedPoolRun`](crate::runner::RunnerError)
//!   imposed on the old cell-at-a-time loop.
//! * [`CrossCheck`] — compares each protocol-level S2 cell against the
//!   abstract model's κ prediction cell-by-cell, closing the loop
//!   between the fidelities.
//!
//! # Worked example
//!
//! Sweep a small FORTRESS grid over both service-order policies and two
//! adversary strategies, in parallel, and cross-check the measured
//! lifetimes against the abstract model:
//!
//! ```
//! use fortress_attack::campaign::StrategyKind;
//! use fortress_core::probelog::SuspicionPolicy;
//! use fortress_core::system::SystemClass;
//! use fortress_model::params::Policy;
//! use fortress_sim::protocol_mc::ProtocolExperiment;
//! use fortress_sim::runner::{Runner, TrialBudget};
//! use fortress_sim::scenario::{CrossCheck, SweepScheduler, SweepSpec};
//!
//! let spec = SweepSpec::new(ProtocolExperiment {
//!     entropy_bits: 5,
//!     omega: 8.0,
//!     max_steps: 300,
//!     ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
//! })
//! .policies(Policy::ALL.to_vec())
//! .suspicions(vec![SuspicionPolicy { window: 8, threshold: 3 }])
//! .strategies(vec![
//!     StrategyKind::PacedBelowThreshold,
//!     StrategyKind::SybilPaced { identities: 3 },
//! ]);
//!
//! let cells = spec.compile(42);
//! assert_eq!(cells.len(), 4); // 2 policies × 2 strategies
//! let report = SweepScheduler::new(&Runner::with_threads(2), TrialBudget::Fixed(4)).run(&cells);
//! for outcome in &report.cells {
//!     assert!(outcome.estimate.mean >= 1.0);
//! }
//! // Identical bits at any thread count:
//! let serial = SweepScheduler::new(&Runner::with_threads(1), TrialBudget::Fixed(4)).run(&cells);
//! assert_eq!(report.to_json(), serial.to_json());
//! // Abstract-model κ predictions, cell by cell:
//! let check = CrossCheck::of(&report);
//! assert!(!check.rows.is_empty());
//! ```
//!
//! # The two-level work queue
//!
//! A cell's trial budget unrolls into *batches* (one per adaptive
//! stopping check; a single batch for fixed budgets), and each batch
//! splits into fixed-size *chunks* — the same unrolling
//! [`Runner::run`] performs. The scheduler keeps one batch per cell in
//! flight: every chunk of every in-flight batch is a first-class job on
//! the shared worker pool, results come back tagged on one channel, and
//! each cell's chunks are merged **in chunk-index order** into that
//! cell's accumulator exactly as the serial path merges them. Per-cell
//! results are therefore bit-identical to `Runner::run` at any thread
//! count — asserted against the campaign golden file by
//! `tests/scheduler.rs` — while idle workers always have another cell's
//! chunks to steal, which is where the cell-level speedup comes from.

use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use fortress_attack::campaign::StrategyKind;
use fortress_core::client::RetryPolicy;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::SystemClass;
use fortress_net::fault::FaultPlan;
use fortress_markov::LaunchPad;
use fortress_model::lifetime::expected_lifetime_s2_so;
use fortress_model::params::{AttackParams, Policy, ProbeModel};
use fortress_model::{expected_lifetime, SystemKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::abstract_mc::AbstractModel;
use crate::campaign_mc::run_cell_measured;
use crate::event_mc::sample_lifetime;
use crate::faults::FaultSpec;
use crate::fleet_mc::ShardSpec;
use crate::outage::{OutageSpec, RepairSpec};
use crate::protocol_mc::ProtocolExperiment;
use crate::report::{avail_json, fmt_avail, fmt_num, CsvTable};
use crate::runner::{
    fold, trial_seed, ChunkResult, Runner, RunnerError, Sample, SampleStats, TrialBudget, TrialFn,
    POOLED_PANIC_MSG,
};
use crate::stats::{AvailPoint, AvailStats, Estimate, RunningStats};

/// Trials per work unit for sweep cells. Protocol trials are ms-scale,
/// so small chunks keep the pool busy even at adaptive-budget batch
/// sizes. Fixed (not derived from the runner) because the chunk size is
/// part of the merge tree and hence of the golden-pinned bits.
pub const CELL_CHUNK: u64 = 8;

/// One trial's full measurement: the lifetime every scenario produces,
/// plus the availability point protocol-level trials attach (downtime
/// fraction, failovers, failover latency, lost requests — the
/// availability axis's per-trial observables).
#[derive(Clone, Copy, Debug)]
pub struct TrialMeasure {
    /// The 1-based step at which the system fell (or the step cap).
    pub lifetime: u64,
    /// Availability measurements, where the scenario produces them
    /// (protocol and campaign trials always do; abstract and
    /// event-driven trials have no machinery to measure).
    pub avail: Option<AvailPoint>,
}

impl TrialMeasure {
    /// A lifetime-only measurement (scenarios without an availability
    /// dimension).
    pub fn lifetime_only(lifetime: u64) -> TrialMeasure {
        TrialMeasure {
            lifetime,
            avail: None,
        }
    }

    /// The measurement of one finished protocol trial: `fell` is the
    /// 1-based fall step (or `cap` when censored), `compromised` says
    /// which, and the availability counters come off the stack. The
    /// downtime fraction is taken over the full mission window `cap`:
    /// observed down steps plus — when the trial ended in compromise —
    /// every remaining step of the window (a fallen system delivers no
    /// correct service), so "resisted the attack" and "stayed up"
    /// compose into one availability number, the survivability
    /// literature's resilience metric.
    pub fn of_protocol_trial<T: fortress_net::Transport>(
        cap: u64,
        fell: u64,
        compromised: bool,
        stack: &fortress_core::system::Stack<T>,
    ) -> TrialMeasure {
        let avail = stack.availability();
        let cap = cap.max(1);
        let post = if compromised { cap - fell } else { 0 };
        // Repair economics only exist on trials that armed the S0
        // accounting (a repair-axis crash or an explicit enable); legacy
        // cells carry `None` and their accumulators stay empty.
        let repair = stack.smr_repair_tracked().then(|| crate::stats::RepairPoint {
            view_changes: avail.view_changes as f64,
            view_change_latency: avail.mean_failover_latency(),
            transfer_units: avail.transfer_units as f64,
            storm_queue_depth: avail.peak_transfer_queue as f64,
        });
        TrialMeasure {
            lifetime: fell,
            avail: Some(AvailPoint {
                downtime_fraction: (avail.down_steps + post) as f64 / cap as f64,
                failovers: avail.failovers as f64,
                failover_latency: avail.mean_failover_latency(),
                lost_requests: avail.lost_requests as f64,
                degrade: None,
                shard: None,
                repair,
            }),
        }
    }

    /// Attaches a degradation point (goodput-probe observables under a
    /// fault plan) to the availability measurement, if one exists.
    pub fn with_degrade(mut self, degrade: Option<crate::stats::DegradePoint>) -> TrialMeasure {
        if let Some(avail) = self.avail.as_mut() {
            avail.degrade = degrade;
        }
        self
    }

    /// Attaches a shard point (fleet-level observables of a sharded
    /// trial) to the availability measurement, if one exists.
    pub fn with_shard(mut self, shard: Option<crate::stats::ShardPoint>) -> TrialMeasure {
        if let Some(avail) = self.avail.as_mut() {
            avail.shard = shard;
        }
        self
    }

    /// The runner-facing sample: lifetime as the primary value, the
    /// availability point alongside.
    pub(crate) fn into_sample(self) -> Sample {
        Sample {
            value: self.lifetime as f64,
            avail: self.avail,
        }
    }
}

/// One experiment scenario: a pure function from a seed to a measured
/// lifetime in unit time-steps. Object-safe, so heterogeneous scenarios
/// (abstract, event-driven, protocol, campaign) can sit in one sweep.
pub trait Scenario: Send + Sync {
    /// Human-readable cell label (reports, golden files).
    fn label(&self) -> String;

    /// Runs one trial; returns the 1-based step at which the system
    /// fell (or the scenario's step cap if censored). Must be a pure
    /// function of `seed` — that is what makes sweeps deterministic at
    /// any thread count.
    fn run_once(&self, seed: u64) -> u64;

    /// Runs one trial and returns the full [`TrialMeasure`]. The default
    /// wraps [`Scenario::run_once`] with no availability point;
    /// implementors with an availability dimension override it. The
    /// lifetime must equal `run_once(seed)` bit-for-bit — sweeps use
    /// this method, and the equality is what keeps measured sweeps and
    /// lifetime-only estimates on identical trial streams.
    fn run_measured(&self, seed: u64) -> TrialMeasure {
        TrialMeasure::lifetime_only(self.run_once(seed))
    }
}

impl Scenario for AbstractModel {
    fn label(&self) -> String {
        format!("abstract {} {}", kind_label(self.kind), self.policy.suffix())
    }

    /// One step-by-step trial, its RNG stream derived from `seed` exactly
    /// as the runner derives per-trial streams — so
    /// [`AbstractModel::estimate_with`] and a scenario sweep of the same
    /// model return identical bits.
    fn run_once(&self, seed: u64) -> u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        self.simulate_once(&mut rng)
    }
}

impl Scenario for ProtocolExperiment {
    fn label(&self) -> String {
        format!(
            "protocol {} {} chi=2^{}{}{}{}{}",
            class_label(self.class),
            self.policy.suffix(),
            self.entropy_bits,
            outage_suffix(self.outage),
            fault_suffix(self.fault),
            shard_suffix(self.shard),
            repair_suffix(self.repair),
        )
    }

    fn run_once(&self, seed: u64) -> u64 {
        ProtocolExperiment::run_once(self, seed)
    }

    fn run_measured(&self, seed: u64) -> TrialMeasure {
        ProtocolExperiment::run_measured(self, seed)
    }
}

/// The declarative coordinate of one scenario cell — which engine runs
/// it and with which parameters. `Copy`, so sweeps can treat it as a
/// value; its [content seed](ScenarioSpec::content_seed) is a pure
/// function of every field.
#[derive(Clone, Copy, Debug)]
pub enum ScenarioSpec {
    /// Step-by-step abstract-model simulation ([`AbstractModel`]).
    Abstract(AbstractModel),
    /// Event-driven sampling from the closed-form distributions — O(1)
    /// per trial, the only fidelity that reaches the `α = 10⁻⁵` corner.
    Event {
        /// System class (κ embedded for S2).
        kind: SystemKind,
        /// Obfuscation policy.
        policy: Policy,
        /// Attack parameters.
        params: AttackParams,
        /// Launch-pad semantics (S2 only).
        launch_pad: LaunchPad,
    },
    /// Protocol-level stacks under the paper's baseline attacker.
    Protocol(ProtocolExperiment),
    /// Protocol-level stacks under an explicit adversary strategy — a
    /// campaign cell.
    Campaign {
        /// The experiment template (class, policy, entropy, suspicion,
        /// fleet size, ω, step cap).
        experiment: ProtocolExperiment,
        /// The adversary posture.
        strategy: StrategyKind,
    },
}

impl Scenario for ScenarioSpec {
    fn label(&self) -> String {
        match self {
            ScenarioSpec::Abstract(m) => m.label(),
            ScenarioSpec::Event { kind, policy, params, .. } => format!(
                "event {} {} alpha={:.1e}",
                kind_label(*kind),
                policy.suffix(),
                params.alpha()
            ),
            ScenarioSpec::Protocol(e) => e.label(),
            ScenarioSpec::Campaign { experiment: e, strategy } => format!(
                "{} {} chi=2^{} w={}/t={} np={} {}{}{}{}{}",
                class_label(e.class),
                e.policy.suffix(),
                e.entropy_bits,
                e.suspicion.window,
                e.suspicion.threshold,
                e.np,
                strategy.display_label(),
                outage_suffix(e.outage),
                fault_suffix(e.fault),
                shard_suffix(e.shard),
                repair_suffix(e.repair),
            ),
        }
    }

    fn run_once(&self, seed: u64) -> u64 {
        self.run_measured(seed).lifetime
    }

    fn run_measured(&self, seed: u64) -> TrialMeasure {
        match *self {
            ScenarioSpec::Abstract(m) => TrialMeasure::lifetime_only(m.run_once(seed)),
            ScenarioSpec::Event { kind, policy, params, launch_pad } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                TrialMeasure::lifetime_only(sample_lifetime(
                    kind, policy, &params, launch_pad, &mut rng,
                ))
            }
            ScenarioSpec::Protocol(e) => ProtocolExperiment::run_measured(&e, seed),
            ScenarioSpec::Campaign { experiment, strategy } => {
                run_cell_measured(&experiment, strategy, seed)
            }
        }
    }
}

impl ScenarioSpec {
    /// The cell's base seed under `base_seed` — a pure function of the
    /// cell *content* (every parameter, never a sweep position), mixed
    /// through the same SplitMix64 fold the campaign grids use.
    /// Consequences: per-cell results are invariant under sweep
    /// reordering and subsetting, and any two cells differing in any
    /// parameter draw decorrelated trial streams.
    pub fn content_seed(&self, base_seed: u64) -> u64 {
        match *self {
            ScenarioSpec::Abstract(m) => {
                let mut s = fold(base_seed, 0xAB57_4AC7);
                s = fold_kind(s, m.kind);
                s = fold(s, m.policy.id());
                s = fold(s, m.params.chi().to_bits());
                s = fold(s, m.params.omega().to_bits());
                s = fold(s, pad_id(m.launch_pad));
                fold(s, m.max_steps)
            }
            ScenarioSpec::Event { kind, policy, params, launch_pad } => {
                let mut s = fold(base_seed, 0x0E7E_4272);
                s = fold_kind(s, kind);
                s = fold(s, policy.id());
                s = fold(s, params.chi().to_bits());
                s = fold(s, params.omega().to_bits());
                fold(s, pad_id(launch_pad))
            }
            ScenarioSpec::Protocol(e) => fold_experiment(fold(base_seed, 0x9207_0C01), &e),
            ScenarioSpec::Campaign { experiment, strategy } => {
                let s = fold_experiment(fold(base_seed, 0x00CA_4A17), &experiment);
                fold(s, strategy.id())
            }
        }
    }

    /// The step cap this scenario censors at, if it has one.
    pub fn step_cap(&self) -> Option<u64> {
        match self {
            ScenarioSpec::Abstract(m) => Some(m.max_steps),
            ScenarioSpec::Event { .. } => None,
            ScenarioSpec::Protocol(e) | ScenarioSpec::Campaign { experiment: e, .. } => {
                Some(e.max_steps)
            }
        }
    }

    /// The indirect-attack coefficient κ this cell realizes, where one
    /// is defined: the embedded κ for abstract/event S2 cells, the
    /// suspicion-induced κ for protocol S2 cells (baseline = paced), and
    /// the strategy's long-run κ for campaign S2 cells (None for
    /// strategies without a steady indirect rate, and for 1-tier
    /// classes, where κ has no meaning).
    pub fn kappa(&self) -> Option<f64> {
        match *self {
            ScenarioSpec::Abstract(AbstractModel { kind, .. })
            | ScenarioSpec::Event { kind, .. } => match kind {
                SystemKind::S2Fortress { kappa } => Some(kappa),
                _ => None,
            },
            ScenarioSpec::Protocol(e) => (e.class == SystemClass::S2Fortress)
                .then(|| e.suspicion.induced_kappa(e.omega)),
            ScenarioSpec::Campaign { experiment: e, strategy } => {
                if e.class != SystemClass::S2Fortress {
                    return None;
                }
                strategy.indirect_kappa(e.suspicion, e.omega)
            }
        }
    }
}

/// Runs one scenario through the parallel runner: trial `i` executes
/// `spec.run_once(trial_seed(base_seed, i))`, so results are
/// bit-identical at any thread count and reproduce cell-by-cell inside
/// any sweep that assigns the same seed. This is the single MC entry
/// point `AbstractModel::estimate_with` and
/// `ProtocolExperiment::estimate_with` delegate to.
pub fn run_scenario(
    spec: ScenarioSpec,
    runner: &Runner,
    budget: TrialBudget,
    base_seed: u64,
) -> RunningStats {
    run_scenario_measured(spec, runner, budget, base_seed).0
}

/// [`run_scenario`] with the merged availability statistics alongside
/// the lifetime statistics: the same trials, the same chunk-ordered
/// merge tree (one reduction per chunk carries both accumulators), so
/// both returns are bit-identical at any thread count and the lifetime
/// statistics equal `run_scenario`'s exactly.
pub fn run_scenario_measured(
    spec: ScenarioSpec,
    runner: &Runner,
    budget: TrialBudget,
    base_seed: u64,
) -> (RunningStats, AvailStats) {
    let trial: TrialFn = Arc::new(move |i, _rng: &mut SmallRng| {
        spec.run_measured(trial_seed(base_seed, i)).into_sample()
    });
    match runner.try_run_samples(base_seed, budget, trial) {
        Ok(stats) => (stats.value, stats.avail),
        Err(e) => panic!("{e}"),
    }
}

/// One compiled sweep cell: a scenario, its display label, and its
/// content-derived seed.
#[derive(Clone, Debug)]
pub struct SweepCell {
    /// Display label (reports, golden files).
    pub label: String,
    /// The scenario coordinate.
    pub spec: ScenarioSpec,
    /// The cell's base seed (trial `i` runs at
    /// [`trial_seed`]`(seed, i)`).
    pub seed: u64,
}

impl SweepCell {
    /// A cell from a spec, seeded by the spec's content under
    /// `base_seed`.
    pub fn of(spec: ScenarioSpec, base_seed: u64) -> SweepCell {
        SweepCell {
            label: spec.label(),
            spec,
            seed: spec.content_seed(base_seed),
        }
    }
}

/// A declarative sweep: nine axes over a shared experiment template,
/// compiled to a flat, content-seeded cell list.
///
/// For [`SystemClass::S2Fortress`] the full cartesian product of
/// suspicion × fleet × strategy applies; for the 1-tier classes those
/// axes are vacuous (there is no proxy tier to pace against), so each
/// (class, policy, entropy) coordinate compiles to a single
/// [`ScenarioSpec::Protocol`] cell instead of duplicated ones.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// System-class axis.
    pub classes: Vec<SystemClass>,
    /// Service-order policy axis (SO/PO).
    pub policies: Vec<Policy>,
    /// Key-entropy axis (χ = 2^bits).
    pub entropy_bits: Vec<u32>,
    /// Suspicion-policy axis (S2 cells only).
    pub suspicions: Vec<SuspicionPolicy>,
    /// Proxy-fleet-size axis (S2 cells only).
    pub fleets: Vec<usize>,
    /// Adversary-strategy axis (S2 cells only).
    pub strategies: Vec<StrategyKind>,
    /// Outage-schedule axis (PB-tier classes — S1 and S2; vacuous for
    /// S0, whose availability story is the SMR quorum's).
    pub outages: Vec<OutageSpec>,
    /// Network-fault axis (every class — faults live at the transport
    /// layer, below the replication scheme).
    pub faults: Vec<FaultSpec>,
    /// Shard axis (S2 cells only — the fleet multiplies fortress
    /// *groups*, which only the fortified class deploys as tenants
    /// behind the key-hash directory).
    pub shards: Vec<ShardSpec>,
    /// Repair axis (S0 cells only — crash schedules routed through the
    /// SMR view-change path with divergence-priced state transfer; the
    /// PB classes recover through failover, covered by the outage axis).
    pub repairs: Vec<RepairSpec>,
    /// Shared experiment template; each cell overrides the swept fields.
    pub base: ProtocolExperiment,
}

impl SweepSpec {
    /// A sweep with every axis pinned to the template's value (one
    /// paced cell); widen axes with the builder methods.
    pub fn new(base: ProtocolExperiment) -> SweepSpec {
        SweepSpec {
            classes: vec![base.class],
            policies: vec![base.policy],
            entropy_bits: vec![base.entropy_bits],
            suspicions: vec![base.suspicion],
            fleets: vec![base.np],
            strategies: vec![StrategyKind::PacedBelowThreshold],
            outages: vec![base.outage],
            faults: vec![base.fault],
            shards: vec![base.shard],
            repairs: vec![base.repair],
            base,
        }
    }

    /// Replaces the system-class axis.
    pub fn classes(mut self, classes: Vec<SystemClass>) -> SweepSpec {
        self.classes = classes;
        self
    }

    /// Replaces the service-order policy axis.
    pub fn policies(mut self, policies: Vec<Policy>) -> SweepSpec {
        self.policies = policies;
        self
    }

    /// Replaces the entropy axis.
    pub fn entropies(mut self, entropy_bits: Vec<u32>) -> SweepSpec {
        self.entropy_bits = entropy_bits;
        self
    }

    /// Replaces the suspicion-policy axis.
    pub fn suspicions(mut self, suspicions: Vec<SuspicionPolicy>) -> SweepSpec {
        self.suspicions = suspicions;
        self
    }

    /// Replaces the fleet-size axis.
    pub fn fleets(mut self, fleets: Vec<usize>) -> SweepSpec {
        self.fleets = fleets;
        self
    }

    /// Replaces the adversary-strategy axis.
    pub fn strategies(mut self, strategies: Vec<StrategyKind>) -> SweepSpec {
        self.strategies = strategies;
        self
    }

    /// Replaces the outage-schedule axis (the availability dimension).
    pub fn outages(mut self, outages: Vec<OutageSpec>) -> SweepSpec {
        self.outages = outages;
        self
    }

    /// Replaces the network-fault axis (the degraded-network dimension).
    pub fn faults(mut self, faults: Vec<FaultSpec>) -> SweepSpec {
        self.faults = faults;
        self
    }

    /// Replaces the shard axis (the multi-tenant fleet dimension).
    pub fn shards(mut self, shards: Vec<ShardSpec>) -> SweepSpec {
        self.shards = shards;
        self
    }

    /// Replaces the repair axis (the SMR repair-economics dimension).
    pub fn repairs(mut self, repairs: Vec<RepairSpec>) -> SweepSpec {
        self.repairs = repairs;
        self
    }

    /// Compiles the axes to the flat cell list in axis-major order
    /// (class, policy, entropy, suspicion, fleet, strategy, outage,
    /// fault, shard, repair). The order is presentation only — every
    /// cell's seed derives from its content, so reordering or subsetting
    /// axes changes no cell's trials. Vacuous axes collapse: 1-tier
    /// classes skip suspicion / fleet / strategy **and the shard axis**
    /// (only the fortified class deploys fleet tenants), S0 skips the
    /// outage axis (its crash story is the repair axis, routed through
    /// the view-change protocol), and the repair axis applies to S0
    /// only (PB-tier recovery is failover, already the outage axis's
    /// subject). The fault axis applies to every class — network faults
    /// live at the transport layer, below the replication scheme.
    pub fn compile(&self, base_seed: u64) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for &class in &self.classes {
            for &policy in &self.policies {
                for &entropy_bits in &self.entropy_bits {
                    if class == SystemClass::S2Fortress {
                        for &suspicion in &self.suspicions {
                            for &np in &self.fleets {
                                for &strategy in &self.strategies {
                                    for &outage in &self.outages {
                                        for &fault in &self.faults {
                                            for &shard in &self.shards {
                                                let experiment = ProtocolExperiment {
                                                    class,
                                                    policy,
                                                    entropy_bits,
                                                    suspicion,
                                                    np,
                                                    outage,
                                                    fault,
                                                    shard,
                                                    repair: RepairSpec::None,
                                                    ..self.base
                                                };
                                                cells.push(SweepCell::of(
                                                    ScenarioSpec::Campaign {
                                                        experiment,
                                                        strategy,
                                                    },
                                                    base_seed,
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    } else {
                        let outages: &[OutageSpec] = if class == SystemClass::S0Smr {
                            &[OutageSpec::None]
                        } else {
                            &self.outages
                        };
                        let repairs: &[RepairSpec] = if class == SystemClass::S0Smr {
                            &self.repairs
                        } else {
                            &[RepairSpec::None]
                        };
                        for &outage in outages {
                            for &fault in &self.faults {
                                for &repair in repairs {
                                    let experiment = ProtocolExperiment {
                                        class,
                                        policy,
                                        entropy_bits,
                                        outage,
                                        fault,
                                        shard: ShardSpec::None,
                                        repair,
                                        ..self.base
                                    };
                                    cells.push(SweepCell::of(
                                        ScenarioSpec::Protocol(experiment),
                                        base_seed,
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// The default sweep the `campaign` bench binary runs: the SO campaign
/// grid (paper suspicion trio × fleets 1/3/5 × all strategies, Sybil
/// included) plus a PO slice — proactive re-randomization at a smaller
/// key space and step cap, so PO cells stay ms-scale while the
/// PO-policy axis is genuinely exercised.
pub fn paper_default_sweep(base_seed: u64) -> Vec<SweepCell> {
    let so = SweepSpec::new(ProtocolExperiment {
        entropy_bits: 8,
        omega: 8.0,
        max_steps: 4_000,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    })
    .suspicions(SuspicionPolicy::paper_grid().to_vec())
    .fleets(vec![1, 3, 5])
    .strategies(StrategyKind::ALL.to_vec());
    let po = SweepSpec::new(ProtocolExperiment {
        entropy_bits: 6,
        omega: 8.0,
        max_steps: 800,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::Proactive)
    })
    .suspicions(vec![SuspicionPolicy::paper_grid()[2]])
    .strategies(StrategyKind::ALL.to_vec());
    let mut cells = so.compile(base_seed);
    cells.extend(po.compile(base_seed));
    cells
}

/// The availability slice the `campaign` bench and CI smoke run: three
/// outage schedules (none / periodic / Poisson-seeded) against the
/// paper's tightest suspicion policy, under both a rate-disciplined
/// adversary and the outage-timing [`StrategyKind::OutageStrike`]
/// attacker, on the fortified S2 — plus the same schedules against the
/// bare-PB S1 baseline (strategy axis vacuous there), so the fortified
/// vs bare availability comparison rides in one report.
pub fn availability_sweep(base_seed: u64) -> Vec<SweepCell> {
    let outages = vec![
        OutageSpec::None,
        OutageSpec::Periodic {
            period: 40,
            downtime: 25,
        },
        OutageSpec::Random {
            rate: 0.01,
            downtime: 25,
        },
    ];
    let s2 = SweepSpec::new(availability_base(SystemClass::S2Fortress))
        .strategies(vec![
            StrategyKind::PacedBelowThreshold,
            StrategyKind::OutageStrike,
        ])
        .outages(outages.clone());
    let s1 = SweepSpec::new(availability_base(SystemClass::S1Pb)).outages(outages);
    let mut cells = s2.compile(base_seed);
    cells.extend(s1.compile(base_seed));
    cells
}

/// The shared experiment template of the availability slice — one
/// definition, reused by [`availability_sweep`], the directional tests
/// and the availability example, so a tuning change cannot silently
/// leave them on different configurations. Longer-lived cells than the
/// lifetime grids: the availability signal needs trials that survive
/// deep into the mission window (several outage periods), so the key
/// space is wider and the attacker slower than in the
/// compromise-focused sweeps.
pub fn availability_base(class: SystemClass) -> ProtocolExperiment {
    ProtocolExperiment {
        entropy_bits: 10,
        omega: 4.0,
        max_steps: 300,
        suspicion: SuspicionPolicy::paper_grid()[0],
        ..ProtocolExperiment::new(class, Policy::StartupOnly)
    }
}

/// The network-fault slice the `campaign` bench and CI smoke run: three
/// fault coordinates (a clean network, light per-link loss with a
/// 2-retry client, heavy loss plus jitter and duplication with a
/// 3-retry client) on the fortified S2 under a rate-disciplined
/// adversary, plus the same coordinates on the bare-PB S1 baseline —
/// the degraded-network analogue of [`availability_sweep`], riding the
/// same report machinery. The `FaultSpec::None` cells run the exact
/// pre-axis code path, so this sweep doubles as a passthrough check.
pub fn fault_sweep(base_seed: u64) -> Vec<SweepCell> {
    let faults = vec![
        FaultSpec::None,
        FaultSpec::Degraded {
            plan: FaultPlan::Degraded {
                loss: 0.05,
                delay_min: 0,
                delay_max: 2,
                dup: 0.0,
                partition: None,
                slow: None,
            },
            retry: RetryPolicy::retrying(8, 2, 2),
        },
        FaultSpec::Degraded {
            plan: FaultPlan::Degraded {
                loss: 0.10,
                delay_min: 0,
                delay_max: 3,
                dup: 0.02,
                partition: None,
                slow: None,
            },
            retry: RetryPolicy::retrying(8, 3, 2),
        },
    ];
    let s2 = SweepSpec::new(fault_base(SystemClass::S2Fortress)).faults(faults.clone());
    let s1 = SweepSpec::new(fault_base(SystemClass::S1Pb)).faults(faults);
    let mut cells = s2.compile(base_seed);
    cells.extend(s1.compile(base_seed));
    cells
}

/// The shared experiment template of the fault slice — one definition,
/// reused by [`fault_sweep`], the directional goodput tests and the
/// fault-sweep example, so a tuning change cannot silently leave them
/// on different configurations. Like [`availability_base`], the cells
/// are survival-biased (wide key space, slow attacker) so the goodput
/// signal comes from trials that live deep into the mission window.
pub fn fault_base(class: SystemClass) -> ProtocolExperiment {
    ProtocolExperiment {
        entropy_bits: 10,
        omega: 4.0,
        max_steps: 200,
        suspicion: SuspicionPolicy::paper_grid()[0],
        ..ProtocolExperiment::new(class, Policy::StartupOnly)
    }
}

/// The shard slice the `campaign` bench and CI smoke run: a vacuous
/// coordinate (the exact single-stack pre-axis path, doubling as a
/// passthrough check), a 3-group fleet under both cross-shard
/// placements, and a concentrated fleet with a mid-trial rebalance —
/// all on the fortified S2 under a rate-disciplined adversary.
pub fn shard_sweep(base_seed: u64) -> Vec<SweepCell> {
    let shards = vec![
        ShardSpec::None,
        ShardSpec::Sharded {
            shards: 3,
            zipf_s: 1.2,
            placement: fortress_attack::shard::ShardPlacement::Concentrate,
            rebalance_at: 0,
        },
        ShardSpec::Sharded {
            shards: 3,
            zipf_s: 1.2,
            placement: fortress_attack::shard::ShardPlacement::Spread,
            rebalance_at: 0,
        },
        ShardSpec::Sharded {
            shards: 3,
            zipf_s: 1.2,
            placement: fortress_attack::shard::ShardPlacement::Concentrate,
            rebalance_at: 6,
        },
    ];
    SweepSpec::new(shard_base()).shards(shards).compile(base_seed)
}

/// The shared experiment template of the shard slice — one definition,
/// reused by [`shard_sweep`], the directional placement tests and the
/// shard-sweep example. Fall-biased (narrow key space, full-rate
/// attacker) so the hottest-shard lifetime signal lands inside the
/// mission window instead of censoring at it.
pub fn shard_base() -> ProtocolExperiment {
    ProtocolExperiment {
        entropy_bits: 7,
        omega: 8.0,
        max_steps: 400,
        suspicion: SuspicionPolicy { window: 16, threshold: 8 },
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    }
}

/// The repair slice the `campaign` bench and CI smoke run, all on the
/// SMR-quorum S0 under a slow rate-disciplined adversary: a vacuous
/// coordinate (the exact single-stack pre-axis path, doubling as a
/// passthrough check), a single leader crash (one full view change),
/// and a two-crash schedule under both recovery disciplines —
/// staggered (each machine rejoins `downtime` after its own crash) and
/// storm (correlated bring-ups contending head-of-line for the
/// bandwidth budget while the quorum is hostage). The storm cell is
/// the economics headline: same crashes, same downtime parameter,
/// strictly more measured downtime.
pub fn repair_sweep(base_seed: u64) -> Vec<SweepCell> {
    let repairs = vec![
        RepairSpec::None,
        RepairSpec::Smr {
            crashes: 1,
            crash_at: 40,
            stagger: 60,
            downtime: 30,
            bandwidth: 1,
            storm: false,
        },
        RepairSpec::Smr {
            crashes: 2,
            crash_at: 40,
            stagger: 60,
            downtime: 30,
            bandwidth: 1,
            storm: false,
        },
        RepairSpec::Smr {
            crashes: 2,
            crash_at: 40,
            stagger: 60,
            downtime: 30,
            bandwidth: 1,
            storm: true,
        },
    ];
    SweepSpec::new(repair_base()).repairs(repairs).compile(base_seed)
}

/// The shared experiment template of the repair slice — one definition,
/// reused by [`repair_sweep`], the directional storm tests and the CI
/// smoke. Survival-biased (wide key space, slow attacker) so the
/// repair signal comes from trials that live through the whole crash
/// schedule; the 300-step window fits the storm cell's full recovery
/// (last rejoiner paid off around step 250 at bandwidth 1).
pub fn repair_base() -> ProtocolExperiment {
    ProtocolExperiment {
        entropy_bits: 12,
        omega: 2.0,
        max_steps: 300,
        ..ProtocolExperiment::new(SystemClass::S0Smr, Policy::StartupOnly)
    }
}

/// The measured outcome of one sweep cell.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The κ the cell realizes, where defined (see
    /// [`ScenarioSpec::kappa`]).
    pub kappa: Option<f64>,
    /// Full trial statistics (the estimate's source of truth, plus
    /// min/max for censoring detection).
    pub stats: RunningStats,
    /// Lifetime estimate (mean steps until compromise, 95% CI).
    pub estimate: Estimate,
    /// Whether any trial reached the scenario's step cap (read the mean
    /// as a lower bound when set).
    pub censored: bool,
    /// Availability statistics across the cell's trials — empty for
    /// scenarios without an availability dimension (abstract,
    /// event-driven).
    pub avail: AvailStats,
}

impl SweepOutcome {
    /// The outcome of `cell` given its merged trial statistics — the
    /// single definition of the derived fields (estimate, κ, censoring),
    /// shared by the scheduler and every cell-at-a-time driver so their
    /// reports cannot diverge in anything but scheduling.
    pub fn of(cell: &SweepCell, stats: RunningStats) -> SweepOutcome {
        SweepOutcome::measured(cell, stats, AvailStats::new())
    }

    /// [`SweepOutcome::of`] with the cell's merged availability
    /// statistics attached.
    pub fn measured(cell: &SweepCell, stats: RunningStats, avail: AvailStats) -> SweepOutcome {
        let censored = cell
            .spec
            .step_cap()
            .is_some_and(|cap| stats.max() >= cap as f64);
        SweepOutcome {
            kappa: cell.spec.kappa(),
            estimate: stats.estimate(),
            stats,
            censored,
            avail,
            cell: cell.clone(),
        }
    }
}

/// All cell outcomes of one sweep, in input-cell order.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Outcomes, one per input cell, in input order.
    pub cells: Vec<SweepOutcome>,
}

impl SweepReport {
    /// Renders the report as a CSV table (one row per cell), the
    /// availability columns included (`-` where a cell's scenario has no
    /// availability dimension). The degradation columns (goodput,
    /// retries, duplicate suppression, give-ups) appear only when some
    /// cell ran under a fault plan, and the shard columns (hottest-shard
    /// lifetime/load, moved requests, fallen groups) only when some cell
    /// ran sharded, and the repair columns (view changes and their
    /// latency, transfer units, storm queue depth) only when some cell
    /// armed the SMR repair accounting — sweeps without those axes keep
    /// the exact pre-axis column set, which the golden files pin.
    pub fn to_table(&self) -> CsvTable {
        let degraded = self.cells.iter().any(|o| o.avail.goodput.n() > 0);
        let sharded = self.cells.iter().any(|o| o.avail.hot_lifetime.n() > 0);
        let repaired = self.cells.iter().any(|o| o.avail.view_changes.n() > 0);
        let mut headers = vec![
            "cell",
            "kappa",
            "mean_lifetime",
            "ci_low",
            "ci_high",
            "trials",
            "censored",
            "downtime",
            "failovers",
            "failover_latency",
            "lost_requests",
        ];
        if degraded {
            headers.extend(["goodput", "retries_per_req", "dup_suppressed", "gave_up"]);
        }
        if sharded {
            headers.extend(["hot_lifetime", "hot_load", "moved_requests", "groups_fallen"]);
        }
        if repaired {
            headers.extend([
                "view_changes",
                "view_change_latency",
                "transfer_units",
                "storm_queue_depth",
            ]);
        }
        let mut table = CsvTable::new(&headers);
        for o in &self.cells {
            let mut row = vec![
                o.cell.label.clone(),
                o.kappa.map(fmt_num).unwrap_or_else(|| "-".to_string()),
                fmt_num(o.estimate.mean),
                fmt_num(o.estimate.ci_low),
                fmt_num(o.estimate.ci_high),
                o.estimate.n.to_string(),
                o.censored.to_string(),
                fmt_avail(&o.avail.downtime),
                fmt_avail(&o.avail.failovers),
                fmt_avail(&o.avail.failover_latency),
                fmt_avail(&o.avail.lost),
            ];
            if degraded {
                row.extend([
                    fmt_avail(&o.avail.goodput),
                    fmt_avail(&o.avail.retries),
                    fmt_avail(&o.avail.dup_suppressed),
                    fmt_avail(&o.avail.gave_up),
                ]);
            }
            if sharded {
                row.extend([
                    fmt_avail(&o.avail.hot_lifetime),
                    fmt_avail(&o.avail.hot_load),
                    fmt_avail(&o.avail.moved),
                    fmt_avail(&o.avail.groups_fallen),
                ]);
            }
            if repaired {
                row.extend([
                    fmt_avail(&o.avail.view_changes),
                    fmt_avail(&o.avail.view_change_latency),
                    fmt_avail(&o.avail.transfer_units),
                    fmt_avail(&o.avail.storm_queue),
                ]);
            }
            table.push_row(row);
        }
        table
    }

    /// Renders the report as a JSON array (stable field order, input
    /// order) — the determinism comparator the bench binaries diff. The
    /// availability means are full-precision so serial/parallel drift in
    /// any metric fails the comparison, not just the lifetimes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, o) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kappa = o
                .kappa
                .map(|k| k.to_string())
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "{{\"cell\":\"{}\",\"kappa\":{},\"mean\":{},\"n\":{},\"censored\":{},\
                 \"downtime\":{},\"failovers\":{},\"failover_latency\":{},\
                 \"lost_requests\":{},\"goodput\":{},\"retries\":{},\
                 \"dup_suppressed\":{},\"gave_up\":{},\"hot_lifetime\":{},\
                 \"hot_load\":{},\"moved_requests\":{},\"groups_fallen\":{},\
                 \"view_changes\":{},\"view_change_latency\":{},\
                 \"transfer_units\":{},\"storm_queue_depth\":{}}}",
                o.cell.label,
                kappa,
                o.estimate.mean,
                o.estimate.n,
                o.censored,
                avail_json(&o.avail.downtime),
                avail_json(&o.avail.failovers),
                avail_json(&o.avail.failover_latency),
                avail_json(&o.avail.lost),
                avail_json(&o.avail.goodput),
                avail_json(&o.avail.retries),
                avail_json(&o.avail.dup_suppressed),
                avail_json(&o.avail.gave_up),
                avail_json(&o.avail.hot_lifetime),
                avail_json(&o.avail.hot_load),
                avail_json(&o.avail.moved),
                avail_json(&o.avail.groups_fallen),
                avail_json(&o.avail.view_changes),
                avail_json(&o.avail.view_change_latency),
                avail_json(&o.avail.transfer_units),
                avail_json(&o.avail.storm_queue),
            ));
        }
        out.push(']');
        out
    }

    /// Mean downtime fraction across every cell that measured one
    /// (`None` when no cell did) — the sweep-level availability headline
    /// the campaign bench emits.
    pub fn mean_downtime_fraction(&self) -> Option<f64> {
        let mut acc = RunningStats::new();
        for o in &self.cells {
            if o.avail.downtime.n() > 0 {
                acc.push(o.avail.downtime.mean());
            }
        }
        (acc.n() > 0).then(|| acc.mean())
    }

    /// Mean goodput fraction across every cell that probed one (`None`
    /// when no cell ran under a fault plan) — the sweep-level
    /// degradation headline the campaign bench emits.
    pub fn mean_goodput_fraction(&self) -> Option<f64> {
        let mut acc = RunningStats::new();
        for o in &self.cells {
            if o.avail.goodput.n() > 0 {
                acc.push(o.avail.goodput.mean());
            }
        }
        (acc.n() > 0).then(|| acc.mean())
    }

    /// Mean retries per request across every cell that probed (`None`
    /// when no cell ran under a fault plan) — how hard the retry policy
    /// worked for the goodput it delivered.
    pub fn mean_retries_per_request(&self) -> Option<f64> {
        let mut acc = RunningStats::new();
        for o in &self.cells {
            if o.avail.retries.n() > 0 {
                acc.push(o.avail.retries.mean());
            }
        }
        (acc.n() > 0).then(|| acc.mean())
    }

    /// Ratio of the mean hottest-shard lifetime under concentrated vs
    /// spread placement, across the sharded cells whose labels say which
    /// placement they ran (`None` unless both placements appear) — the
    /// shard-axis headline the campaign bench emits: below 1.0 means
    /// concentrating the probe budget kills the hottest shard faster.
    pub fn hot_shard_lifetime_ratio(&self) -> Option<f64> {
        let mut conc = RunningStats::new();
        let mut spread = RunningStats::new();
        for o in &self.cells {
            if o.avail.hot_lifetime.n() == 0 {
                continue;
            }
            if o.cell.label.contains("concentrate") {
                conc.push(o.avail.hot_lifetime.mean());
            } else if o.cell.label.contains("spread") {
                spread.push(o.avail.hot_lifetime.mean());
            }
        }
        (conc.n() > 0 && spread.n() > 0 && spread.mean() > 0.0)
            .then(|| conc.mean() / spread.mean())
    }

    /// Mean view-change latency across every cell that completed one
    /// (`None` when no cell armed the repair axis) — the repair-axis
    /// headline the campaign bench emits: for a crash-of-the-leader
    /// schedule it sits at the SMR view timer, not the PB failover
    /// timeout.
    pub fn mean_view_change_latency(&self) -> Option<f64> {
        let mut acc = RunningStats::new();
        for o in &self.cells {
            if o.avail.view_change_latency.n() > 0 {
                acc.push(o.avail.view_change_latency.mean());
            }
        }
        (acc.n() > 0).then(|| acc.mean())
    }
}

/// Runs sweep cells as first-class jobs on one shared worker pool (the
/// two-level work queue described in the [module docs](self)).
///
/// Per-cell results are bit-identical to running each cell through
/// [`Runner::run`] with the same budget and chunk size — at any thread
/// count, including the pool-less 1-thread runner, which executes the
/// cells serially on the caller's thread and is the reference.
pub struct SweepScheduler {
    runner: Runner,
    budget: TrialBudget,
}

/// One in-flight batch: which cell it belongs to, where its trial range
/// ends, and its per-chunk results awaiting in-order merge.
struct Batch {
    cell: usize,
    end: u64,
    chunks: Vec<Option<SampleStats>>,
    received: usize,
}

/// Per-cell budget progress.
struct CellState {
    acc: SampleStats,
    done: u64,
    started: bool,
}

impl SweepScheduler {
    /// A scheduler on `runner`'s pool with `budget` per cell and the
    /// campaign-standard [`CELL_CHUNK`] trials per work unit.
    pub fn new(runner: &Runner, budget: TrialBudget) -> SweepScheduler {
        SweepScheduler {
            runner: runner.clone().with_chunk(CELL_CHUNK),
            budget,
        }
    }

    /// Overrides the per-cell chunk size (part of the merge tree and
    /// hence of the pinned bits — see [`Runner::with_chunk`]).
    pub fn with_chunk(mut self, chunk: u64) -> SweepScheduler {
        self.runner = self.runner.with_chunk(chunk);
        self
    }

    /// The next trial range `budget` prescribes for a cell —
    /// [`TrialBudget::next_range`], the same unrolling `Runner::run`
    /// executes, so the two trial schedules cannot drift apart.
    fn next_range(&self, state: &CellState) -> Option<(u64, u64)> {
        self.budget
            .next_range(state.started, state.done, &state.acc.value)
    }

    /// Drives `cell` forward: submits its next batch to the pool (returns
    /// `true`), or — on pool-less runners and empty ranges — executes
    /// batches serially on the calling thread until the cell finishes
    /// (returns `false`).
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &self,
        cell: usize,
        trial: &TrialFn,
        seed: u64,
        state: &mut CellState,
        results: &Sender<ChunkResult>,
        batches: &mut Vec<Option<Batch>>,
        free_tags: &mut Vec<usize>,
    ) -> bool {
        while let Some((start, end)) = self.next_range(state) {
            let tag = free_tags.pop().unwrap_or_else(|| {
                batches.push(None);
                batches.len() - 1
            });
            match self.runner.submit_batch(tag, seed, start, end, trial, results) {
                Some(n_chunks) => {
                    batches[tag] = Some(Batch {
                        cell,
                        end,
                        chunks: vec![None; n_chunks],
                        received: 0,
                    });
                    return true;
                }
                None => {
                    // No pool, or an empty range: run it here, with the
                    // same chunk-then-merge arithmetic.
                    free_tags.push(tag);
                    let stats = self.runner.batch_serial(seed, start, end, &**trial);
                    state.acc.merge(&stats);
                    state.done = end;
                    state.started = true;
                }
            }
        }
        false
    }

    /// Runs every cell and returns their outcomes in input order.
    ///
    /// # Panics
    ///
    /// Panics (with [`RunnerError::NestedPoolRun`]'s message) when called
    /// from inside one of this runner's own pool workers, and when a
    /// trial closure panics on a pool worker (which degrades the pool,
    /// exactly as under [`Runner::run`]).
    pub fn run(&self, cells: &[SweepCell]) -> SweepReport {
        assert!(
            !self.runner.on_own_pool_worker(),
            "{}",
            RunnerError::NestedPoolRun
        );
        let trials: Vec<TrialFn> = cells
            .iter()
            .map(|cell| {
                let spec = cell.spec;
                let seed = cell.seed;
                Arc::new(move |i: u64, _rng: &mut SmallRng| {
                    spec.run_measured(trial_seed(seed, i)).into_sample()
                }) as TrialFn
            })
            .collect();
        let mut states: Vec<CellState> = cells
            .iter()
            .map(|_| CellState {
                acc: SampleStats::new(),
                done: 0,
                started: false,
            })
            .collect();
        let (tx, rx) = channel::<ChunkResult>();
        let mut batches: Vec<Option<Batch>> = Vec::new();
        let mut free_tags: Vec<usize> = Vec::new();
        let mut in_flight = 0usize;
        for (index, trial) in trials.iter().enumerate() {
            let submitted = self.advance(
                index,
                trial,
                cells[index].seed,
                &mut states[index],
                &tx,
                &mut batches,
                &mut free_tags,
            );
            in_flight += usize::from(submitted);
        }
        while in_flight > 0 {
            let result = rx
                .recv()
                .expect("sweep result channel closed with batches in flight");
            // A panicking trial reports a poisoned chunk before killing
            // its worker; fail fast here — the scheduler's own sender
            // keeps the channel open, so waiting for closure would hang.
            assert!(!result.panicked, "{POOLED_PANIC_MSG}");
            let batch = batches[result.tag]
                .as_mut()
                .expect("chunk tagged for a batch that is not in flight");
            batch.chunks[result.index] = Some(result.stats);
            batch.received += 1;
            if batch.received < batch.chunks.len() {
                continue;
            }
            let batch = batches[result.tag].take().expect("batch checked above");
            free_tags.push(result.tag);
            in_flight -= 1;
            // Merge in chunk-index order — the fixed reduction tree that
            // makes pooled and serial execution bit-identical.
            let mut batch_stats = SampleStats::new();
            for stats in batch.chunks {
                batch_stats.merge(&stats.expect("all chunks accounted for"));
            }
            let cell = batch.cell;
            let state = &mut states[cell];
            state.acc.merge(&batch_stats);
            state.done = batch.end;
            state.started = true;
            let submitted = self.advance(
                cell,
                &trials[cell],
                cells[cell].seed,
                state,
                &tx,
                &mut batches,
                &mut free_tags,
            );
            in_flight += usize::from(submitted);
        }
        SweepReport {
            cells: cells
                .iter()
                .zip(states)
                .map(|(cell, state)| {
                    SweepOutcome::measured(cell, state.acc.value, state.acc.avail)
                })
                .collect(),
        }
    }
}

/// One protocol-vs-abstract comparison row: a protocol-level S2 cell's
/// measured mean lifetime against the abstract model's closed-form
/// prediction at the cell's κ, χ and ω.
#[derive(Clone, Debug)]
pub struct CrossCheckRow {
    /// The protocol cell's label.
    pub label: String,
    /// The κ the cell's strategy realizes against its suspicion policy.
    pub kappa: f64,
    /// Measured mean lifetime (protocol trials).
    pub measured: f64,
    /// Abstract S2 model prediction at (κ, χ, ω).
    pub predicted: f64,
    /// `measured / predicted` — near 1 where the abstract model's shape
    /// survives contact with the implementation.
    pub ratio: f64,
    /// Whether the cell censored at its step cap: `measured` is then a
    /// lower bound, and a small `ratio` means "the cap was too low", not
    /// "the model diverged".
    pub censored: bool,
    /// Measured mean downtime fraction across the cell's trials (`None`
    /// when the cell produced no availability samples).
    pub downtime: Option<f64>,
    /// Closed-form availability prediction: the outage schedule's
    /// expected downtime ([`OutageSpec::expected_downtime_fraction`] at
    /// the deployed fleet size and PB failover timeout) plus the
    /// expected compromise tail of the mission window (`1 − EL/cap` at
    /// the abstract model's predicted lifetime), clamped to 1. `None`
    /// for schedules without a steady rate (strike-then-crash).
    pub predicted_downtime: Option<f64>,
}

/// Cell-by-cell cross-validation of protocol-level S2 cells against the
/// abstract S2 model's κ predictions — the fidelity-closing report the
/// ROADMAP's scenario-growth item asks for. Cells whose strategy has no
/// steady indirect rate (scan-then-strike, adaptive backoff) have no κ
/// to read the model at and are skipped, as are cells whose parameters
/// fall outside the model's domain (ω ≥ χ, non-finite predictions).
#[derive(Clone, Debug)]
pub struct CrossCheck {
    /// One row per comparable protocol cell, in report order.
    pub rows: Vec<CrossCheckRow>,
}

impl CrossCheck {
    /// Builds the cross-check for every comparable cell of `report`.
    pub fn of(report: &SweepReport) -> CrossCheck {
        let rows = report
            .cells
            .iter()
            .filter_map(|o| {
                let experiment = match o.cell.spec {
                    ScenarioSpec::Campaign { experiment, .. } => experiment,
                    ScenarioSpec::Protocol(e) => e,
                    _ => return None,
                };
                if experiment.class != SystemClass::S2Fortress {
                    return None;
                }
                let kappa = o.kappa?;
                let chi = (2.0f64).powi(experiment.entropy_bits as i32);
                let params = AttackParams::new(chi, experiment.omega).ok()?;
                let predicted = match experiment.policy {
                    Policy::StartupOnly => {
                        expected_lifetime_s2_so(&params, kappa, LaunchPad::NextStep)
                    }
                    Policy::Proactive => expected_lifetime(
                        SystemKind::S2Fortress { kappa },
                        Policy::Proactive,
                        ProbeModel::Broadcast,
                        &params,
                    )
                    .ok()?,
                };
                if !predicted.is_finite() || predicted <= 0.0 {
                    return None;
                }
                let cap = experiment.max_steps.max(1) as f64;
                let tail = 1.0 - (predicted.min(cap) / cap);
                let predicted_downtime = experiment
                    .outage
                    .expected_downtime_fraction(fortress_core::system::pb_failover_timeout())
                    .map(|outage_fraction| (outage_fraction + tail).min(1.0));
                Some(CrossCheckRow {
                    label: o.cell.label.clone(),
                    kappa,
                    measured: o.estimate.mean,
                    predicted,
                    ratio: o.estimate.mean / predicted,
                    censored: o.censored,
                    downtime: (o.avail.downtime.n() > 0).then(|| o.avail.downtime.mean()),
                    predicted_downtime,
                })
            })
            .collect();
        CrossCheck { rows }
    }

    /// Renders the cross-check as a CSV table.
    pub fn to_table(&self) -> CsvTable {
        let mut table = CsvTable::new(&[
            "cell",
            "kappa",
            "measured",
            "predicted",
            "ratio",
            "censored",
            "downtime",
            "predicted_downtime",
        ]);
        let opt = |v: Option<f64>| v.map(fmt_num).unwrap_or_else(|| "-".to_string());
        for row in &self.rows {
            table.push_row(vec![
                row.label.clone(),
                fmt_num(row.kappa),
                fmt_num(row.measured),
                fmt_num(row.predicted),
                fmt_num(row.ratio),
                row.censored.to_string(),
                opt(row.downtime),
                opt(row.predicted_downtime),
            ]);
        }
        table
    }
}

/// Outage suffix for cell labels: empty for `None` (legacy labels are
/// preserved verbatim), ` out=<schedule>` otherwise.
fn outage_suffix(outage: OutageSpec) -> String {
    if outage.is_none() {
        String::new()
    } else {
        format!(" out={}", outage.label())
    }
}

/// Fault suffix for cell labels: empty for `None` (legacy labels are
/// preserved verbatim), ` fault=<plan+retry>` otherwise.
fn fault_suffix(fault: FaultSpec) -> String {
    if fault.is_none() {
        String::new()
    } else {
        format!(" fault={}", fault.label())
    }
}

/// Shard suffix for cell labels: empty for `None` (legacy labels are
/// preserved verbatim), ` shard=<groups+skew+placement>` otherwise.
fn shard_suffix(shard: ShardSpec) -> String {
    if shard.is_none() {
        String::new()
    } else {
        format!(" shard={}", shard.label())
    }
}

/// Repair suffix for cell labels: empty for `None` (legacy labels are
/// preserved verbatim), ` repair=<schedule>` otherwise.
fn repair_suffix(repair: RepairSpec) -> String {
    if repair.is_none() {
        String::new()
    } else {
        format!(" repair={}", repair.label())
    }
}

/// Short class label for cell names.
fn class_label(class: SystemClass) -> &'static str {
    match class {
        SystemClass::S0Smr => "S0",
        SystemClass::S1Pb => "S1",
        SystemClass::S2Fortress => "S2",
    }
}

/// Short kind label for cell names.
fn kind_label(kind: SystemKind) -> String {
    match kind {
        SystemKind::S0Smr => "S0".to_string(),
        SystemKind::S1Pb => "S1".to_string(),
        SystemKind::S2Fortress { kappa } => format!("S2(k={kappa})"),
    }
}

/// Folds a [`SystemKind`] (discriminant plus κ bits for S2) into a seed.
fn fold_kind(seed: u64, kind: SystemKind) -> u64 {
    match kind {
        SystemKind::S0Smr => fold(seed, 0),
        SystemKind::S1Pb => fold(seed, 1),
        SystemKind::S2Fortress { kappa } => fold(fold(seed, 2), kappa.to_bits()),
    }
}

/// Stable id of the launch-pad semantics for seeding.
fn pad_id(pad: LaunchPad) -> u64 {
    match pad {
        LaunchPad::NextStep => 0,
        LaunchPad::Disabled => 1,
    }
}

/// Folds every seeded parameter of a protocol experiment. The outage,
/// fault and shard coordinates fold last (in that order), and all three
/// `None` coordinates fold nothing — so every pre-axis cell keeps its
/// pinned seed, while any two cells differing in any outage, fault,
/// retry or shard parameter draw decorrelated trial streams.
fn fold_experiment(seed: u64, e: &ProtocolExperiment) -> u64 {
    let mut s = fold(seed, class_id(e.class));
    s = fold(s, e.policy.id());
    s = fold(s, u64::from(e.entropy_bits));
    s = fold(s, e.omega.to_bits());
    s = fold(s, e.suspicion.window);
    s = fold(s, u64::from(e.suspicion.threshold));
    s = fold(s, e.np as u64);
    s = fold(s, scheme_id(e.scheme));
    s = fold(s, e.max_steps);
    s = e.outage.fold_into(s);
    s = e.fault.fold_into(s);
    s = e.shard.fold_into(s);
    e.repair.fold_into(s)
}

/// Stable id of a system class for seeding.
fn class_id(class: SystemClass) -> u64 {
    match class {
        SystemClass::S0Smr => 0,
        SystemClass::S1Pb => 1,
        SystemClass::S2Fortress => 2,
    }
}

/// Stable id of a randomization scheme for seeding.
fn scheme_id(scheme: fortress_obf::scheme::Scheme) -> u64 {
    match scheme {
        fortress_obf::scheme::Scheme::Aslr => 0,
        fortress_obf::scheme::Scheme::Isr => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> Vec<SweepCell> {
        SweepSpec::new(ProtocolExperiment {
            entropy_bits: 5,
            omega: 8.0,
            max_steps: 300,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        })
        .policies(Policy::ALL.to_vec())
        .suspicions(vec![SuspicionPolicy { window: 8, threshold: 3 }])
        .strategies(vec![
            StrategyKind::PacedBelowThreshold,
            StrategyKind::SybilPaced { identities: 3 },
        ])
        .compile(0xCAFE)
    }

    #[test]
    fn compile_covers_axes_and_collapses_vacuous_ones() {
        let spec = SweepSpec::new(ProtocolExperiment {
            entropy_bits: 5,
            omega: 8.0,
            max_steps: 200,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        })
        .classes(vec![SystemClass::S1Pb, SystemClass::S2Fortress])
        .policies(Policy::ALL.to_vec())
        .strategies(vec![
            StrategyKind::PacedBelowThreshold,
            StrategyKind::Burst,
        ]);
        let cells = spec.compile(1);
        // S1 contributes 1 cell per policy (strategy axis vacuous); S2
        // contributes 2 per policy.
        assert_eq!(cells.len(), 2 + 4);
        let mut seeds = std::collections::HashSet::new();
        for cell in &cells {
            assert!(seeds.insert(cell.seed), "seed collision at {}", cell.label);
        }
    }

    #[test]
    fn content_seeds_are_pure_and_axis_sensitive() {
        let cells = tiny_sweep();
        for cell in &cells {
            assert_eq!(cell.seed, cell.spec.content_seed(0xCAFE), "pure");
            assert_ne!(cell.seed, cell.spec.content_seed(0xCAFF), "base matters");
        }
        // SO and PO cells of the same coordinate differ.
        assert_ne!(cells[0].seed, cells[2].seed);
    }

    #[test]
    fn scheduler_matches_per_cell_runner_bit_for_bit() {
        let cells = tiny_sweep();
        let runner = Runner::with_threads(4);
        let budget = TrialBudget::Fixed(24);
        let report = SweepScheduler::new(&runner, budget).run(&cells);
        for (cell, outcome) in cells.iter().zip(&report.cells) {
            let reference = run_scenario(
                cell.spec,
                &runner.clone().with_chunk(CELL_CHUNK),
                budget,
                cell.seed,
            );
            assert_eq!(outcome.stats, reference, "cell {} diverged", cell.label);
        }
    }

    #[test]
    fn scheduler_is_thread_count_invariant_under_adaptive_budgets() {
        let cells = tiny_sweep();
        let budget = TrialBudget::TargetRse {
            target: 0.1,
            min_trials: 8,
            max_trials: 48,
            batch: 8,
        };
        let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
        let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
        assert_eq!(serial.to_json(), pooled.to_json());
        for (a, b) in serial.cells.iter().zip(&pooled.cells) {
            assert_eq!(a.stats, b.stats, "cell {} diverged", a.cell.label);
        }
    }

    #[test]
    fn sweep_report_renders_kappa_and_censoring() {
        let cells = tiny_sweep();
        let report = SweepScheduler::new(&Runner::with_threads(2), TrialBudget::Fixed(6))
            .run(&cells);
        assert_eq!(report.cells.len(), cells.len());
        let table = report.to_table();
        assert_eq!(table.len(), cells.len());
        let json = report.to_json();
        assert!(json.contains("\"cell\":\"S2 SO"));
        assert!(json.contains("sybil"));
        for o in &report.cells {
            assert!(o.kappa.is_some(), "every S2 rate cell has a κ");
            assert!(o.estimate.mean >= 1.0);
        }
    }

    #[test]
    fn event_and_abstract_scenarios_run_through_the_same_surface() {
        let params = AttackParams::from_alpha(4096.0, 0.01).unwrap();
        let event = ScenarioSpec::Event {
            kind: SystemKind::S1Pb,
            policy: Policy::Proactive,
            params,
            launch_pad: LaunchPad::NextStep,
        };
        let stats = run_scenario(event, &Runner::with_threads(2), TrialBudget::Fixed(4000), 9);
        let analytic = 1.0 / params.alpha();
        assert!((stats.mean() - analytic).abs() / analytic < 0.1);

        let abstract_spec = ScenarioSpec::Abstract(AbstractModel::new(
            SystemKind::S1Pb,
            Policy::Proactive,
            params,
        ));
        let ab = run_scenario(abstract_spec, &Runner::with_threads(2), TrialBudget::Fixed(2000), 9);
        assert!((ab.mean() - analytic).abs() / analytic < 0.15);
        assert_ne!(
            event.content_seed(5),
            abstract_spec.content_seed(5),
            "different fidelities are different cells"
        );
    }

    #[test]
    fn cross_check_rows_cover_rate_disciplined_cells_only() {
        let cells = SweepSpec::new(ProtocolExperiment {
            entropy_bits: 6,
            omega: 8.0,
            max_steps: 2_000,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        })
        .suspicions(vec![SuspicionPolicy { window: 16, threshold: 5 }])
        .strategies(vec![
            StrategyKind::PacedBelowThreshold,
            StrategyKind::ScanThenStrike,
            StrategyKind::SybilPaced { identities: 4 },
        ])
        .compile(0xC4EC);
        let report =
            SweepScheduler::new(&Runner::with_threads(2), TrialBudget::Fixed(48)).run(&cells);
        let check = CrossCheck::of(&report);
        // paced + sybil have a κ; scan-then-strike does not.
        assert_eq!(check.rows.len(), 2);
        for row in &check.rows {
            assert!(row.predicted.is_finite() && row.predicted > 0.0);
            assert!(row.measured > 0.0);
            assert!(row.ratio.is_finite());
        }
        assert_eq!(check.to_table().len(), 2);
    }
}
