//! Protocol-level adversary campaign grids.
//!
//! A [`CampaignGrid`] sweeps the cartesian product of three defense/attack
//! axes through the real protocol stacks:
//!
//! * **suspicion policy** — the proxies' `{window, threshold}` knob, which
//!   sets the κ a rate-disciplined attacker is squeezed to;
//! * **proxy fleet size** — `np`, the width of the indirection tier;
//! * **adversary strategy** — a [`StrategyKind`] from `fortress-attack`:
//!   the paper's paced baseline plus scan-then-strike, burst and
//!   adaptive-backoff postures.
//!
//! Each cell runs full [`ProtocolExperiment`]-style trials (real stacks,
//! real attackers, deterministic network) on the persistent-pool
//! [`Runner`], with either a fixed or an RSE-adaptive [`TrialBudget`] —
//! adaptive budgets spend trials where the lifetime variance demands
//! them, which is what makes dozens-of-cells grids wall-clock-feasible.
//!
//! # Seeding contract
//!
//! Cell seeds are **content-derived**: [`CampaignCell::cell_seed`] mixes
//! the run's base seed with the cell's *parameters* (window, threshold,
//! `np`, [`StrategyKind::id`]) through SplitMix64 — never with the cell's
//! position in the grid. Trial `i` of a cell is then seeded
//! [`trial_seed`]`(cell_seed, i)` exactly as every other runner consumer.
//! Consequences, asserted by `tests/campaign.rs`:
//!
//! * the same grid gives bit-identical per-cell results at any thread
//!   count (the runner's contract), and
//! * reordering or subsetting the grid's axes cannot change any cell's
//!   trials (the content-derived seed), so reports are comparable across
//!   grid layouts and incremental re-runs.

use fortress_attack::campaign::StrategyKind;
use fortress_core::client::RetryPolicy;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::{CompromiseState, Stack, SystemClass};
use fortress_model::params::Policy;
use fortress_net::Transport;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::faults::{FaultSpec, GoodputProbe};
use crate::outage::{OutageDriver, RepairDriver};
use crate::protocol_mc::ProtocolExperiment;
use crate::report::{avail_json, fmt_avail, fmt_num, CsvTable};
use crate::runner::{fold, trial_seed, Runner, TrialBudget};
use crate::scenario::{Scenario, ScenarioSpec, SweepCell, SweepScheduler, TrialMeasure};
use crate::stats::{AvailStats, Estimate};

/// One coordinate of the campaign grid.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CampaignCell {
    /// The proxies' suspicion policy.
    pub suspicion: SuspicionPolicy,
    /// Proxy fleet size.
    pub np: usize,
    /// Adversary posture.
    pub strategy: StrategyKind,
}

impl CampaignCell {
    /// The cell's base seed under `base_seed` — a pure function of the
    /// cell *content* (see the module docs for why that matters).
    pub fn cell_seed(&self, base_seed: u64) -> u64 {
        let mut seed = fold(base_seed, 0x00CA_4A16);
        seed = fold(seed, self.suspicion.window);
        seed = fold(seed, u64::from(self.suspicion.threshold));
        seed = fold(seed, self.np as u64);
        fold(seed, self.strategy.id())
    }
}

/// A campaign sweep definition: the three axes plus the experiment
/// template every cell shares (class, policy, entropy, ω, step cap).
#[derive(Clone, Debug)]
pub struct CampaignGrid {
    /// Suspicion-policy axis.
    pub suspicions: Vec<SuspicionPolicy>,
    /// Fleet-size axis.
    pub fleet_sizes: Vec<usize>,
    /// Strategy axis.
    pub strategies: Vec<StrategyKind>,
    /// Per-cell experiment template; `suspicion` and `np` are overridden
    /// by the cell coordinate, everything else applies grid-wide.
    pub base: ProtocolExperiment,
}

impl CampaignGrid {
    /// The default grid the `campaign` binary sweeps (as the SO block of
    /// `scenario::paper_default_sweep`): 3 suspicion policies × 3 fleet
    /// sizes × all 5 strategies over an SO FORTRESS at scaled entropy —
    /// 45 cells whose shape (not absolute scale) is the claim.
    pub fn paper_default() -> CampaignGrid {
        CampaignGrid {
            // Safe rates 1/64, 4/32 and 8/16 per step: at ω = 8 the
            // induced κ spans 0.002–0.0625, a 32× spread along the axis.
            suspicions: SuspicionPolicy::paper_grid().to_vec(),
            fleet_sizes: vec![1, 3, 5],
            strategies: StrategyKind::ALL.to_vec(),
            base: ProtocolExperiment {
                entropy_bits: 8,
                omega: 8.0,
                max_steps: 4_000,
                ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
            },
        }
    }

    /// All cells in axis-major order (suspicion, then fleet, then
    /// strategy). The order is presentation only — per-cell results are
    /// order-independent by the seeding contract.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(
            self.suspicions.len() * self.fleet_sizes.len() * self.strategies.len(),
        );
        for &suspicion in &self.suspicions {
            for &np in &self.fleet_sizes {
                for &strategy in &self.strategies {
                    cells.push(CampaignCell {
                        suspicion,
                        np,
                        strategy,
                    });
                }
            }
        }
        cells
    }

    /// The experiment a cell runs: the grid template with the cell's
    /// suspicion policy and fleet size patched in.
    pub fn experiment(&self, cell: &CampaignCell) -> ProtocolExperiment {
        ProtocolExperiment {
            suspicion: cell.suspicion,
            np: cell.np,
            ..self.base
        }
    }

    /// Trials per work unit for campaign cells — the scenario layer's
    /// [`crate::scenario::CELL_CHUNK`], re-exported here because the
    /// chunk size is part of the merge tree and hence of the
    /// golden-pinned bits.
    pub const CELL_CHUNK: u64 = crate::scenario::CELL_CHUNK;

    /// Runs one cell on `runner` (re-chunked to [`CampaignGrid::CELL_CHUNK`],
    /// sharing `runner`'s worker pool) and returns its outcome. This is
    /// the cell-at-a-time reference path: the grid-level [`CampaignGrid::run`]
    /// must (and does, asserted by `tests/scheduler.rs`) reproduce its
    /// bits exactly while scheduling cells in parallel.
    pub fn run_cell(
        &self,
        cell: CampaignCell,
        runner: &Runner,
        budget: TrialBudget,
        base_seed: u64,
    ) -> CellOutcome {
        let exp = self.experiment(&cell);
        let strategy = cell.strategy;
        let cell_seed = cell.cell_seed(base_seed);
        let runner = runner.clone().with_chunk(CampaignGrid::CELL_CHUNK);
        let stats = runner
            .try_run_samples(
                cell_seed,
                budget,
                std::sync::Arc::new(move |trial_index, _rng| {
                    run_cell_measured(&exp, strategy, trial_seed(cell_seed, trial_index))
                        .into_sample()
                }),
            )
            .unwrap_or_else(|e| panic!("{e}"));
        // Derived fields (estimate, censoring) come from the one shared
        // definition; only the legacy κ projection differs (the grid
        // reports the suspicion-induced κ for every strategy).
        let spec = ScenarioSpec::Campaign { experiment: exp, strategy };
        let outcome = crate::scenario::SweepOutcome::measured(
            &SweepCell {
                label: spec.label(),
                spec,
                seed: cell_seed,
            },
            stats.value,
            stats.avail,
        );
        CellOutcome {
            cell,
            kappa: cell.suspicion.induced_kappa(exp.omega),
            estimate: outcome.estimate,
            censored: outcome.censored,
            avail: outcome.avail,
        }
    }

    /// The grid's cells as scenario sweep cells, **seeded by the legacy
    /// campaign contract** ([`CampaignCell::cell_seed`], which predates
    /// the wider scenario seeding and is pinned by the campaign golden
    /// file).
    pub fn sweep_cells(&self, base_seed: u64) -> Vec<SweepCell> {
        self.cells()
            .into_iter()
            .map(|cell| {
                let spec = ScenarioSpec::Campaign {
                    experiment: self.experiment(&cell),
                    strategy: cell.strategy,
                };
                SweepCell {
                    label: spec.label(),
                    spec,
                    seed: cell.cell_seed(base_seed),
                }
            })
            .collect()
    }

    /// Runs the whole grid — since the `Scenario` redesign, a thin shim
    /// over [`SweepScheduler`], so independent cells execute in parallel
    /// on `runner`'s worker pool instead of one at a time. Per-cell
    /// statistics are bit-identical to [`CampaignGrid::run_cell`] and to
    /// any `runner` thread count (including the committed golden file,
    /// which predates the scheduler); the report lists cells in
    /// [`CampaignGrid::cells`] order.
    pub fn run(&self, runner: &Runner, budget: TrialBudget, base_seed: u64) -> CampaignReport {
        let report = SweepScheduler::new(runner, budget)
            .with_chunk(CampaignGrid::CELL_CHUNK)
            .run(&self.sweep_cells(base_seed));
        CampaignReport {
            cells: self
                .cells()
                .into_iter()
                .zip(report.cells)
                .map(|(cell, outcome)| CellOutcome {
                    cell,
                    kappa: cell.suspicion.induced_kappa(self.base.omega),
                    estimate: outcome.estimate,
                    censored: outcome.censored,
                    avail: outcome.avail,
                })
                .collect(),
        }
    }
}

/// One trial of one campaign cell: assemble the stack, instantiate the
/// strategy, walk unit time-steps until the compromise condition holds.
/// Returns the 1-based step of the fall, or `max_steps` if censored.
pub fn run_cell_once(exp: &ProtocolExperiment, strategy: StrategyKind, seed: u64) -> u64 {
    run_cell_measured(exp, strategy, seed).lifetime
}

/// [`run_cell_once`] with availability measurements attached: the same
/// drive loop (the adversary's RNG stream is untouched — the outage
/// driver draws from its own stream, and [`OutageSpec::None`](crate::outage::OutageSpec)
/// draws nothing — so lifetimes are bit-identical to the pre-axis
/// runs), plus the experiment's outage schedule injected at the top of
/// each step and the stack's availability counters read out at the end.
pub fn run_cell_measured(
    exp: &ProtocolExperiment,
    strategy: StrategyKind,
    seed: u64,
) -> TrialMeasure {
    // Shard dispatch first: a non-vacuous shard coordinate runs the cell
    // as a fleet behind the key-hash directory (`fleet_mc`), which does
    // its own fault dispatch. `ShardSpec::None` falls through to the
    // exact pre-axis single-stack path below.
    if !exp.shard.is_none() {
        return crate::fleet_mc::run_fleet_measured(exp, strategy, seed);
    }
    // Fault dispatch: `None` runs the bare transport (byte-identical to
    // the pre-axis path — no decorator, no probe, no extra RNG), drawn
    // from the worker's trial arena so a cell's trials rewind one
    // assembled stack instead of rebuilding; `Degraded` wraps the same
    // assembly in the fault decorator and rides a goodput probe along.
    match exp.fault {
        FaultSpec::None => crate::arena::with_arena_stack(exp.stack_config(seed), |stack| {
            run_cell_on(exp, strategy, seed, stack, None)
        }),
        FaultSpec::Degraded { plan, retry } => run_cell_on(
            exp,
            strategy,
            seed,
            &mut exp.build_faulty_stack(seed, plan),
            Some(retry),
        ),
    }
}

/// The one campaign drive loop, generic over the transport: the cell's
/// adversary strategy stepped against `stack`, the outage schedule
/// applied at the top of each step, and — when `retry` is given — a
/// [`GoodputProbe`] stepped after the adversary.
fn run_cell_on<T: Transport>(
    exp: &ProtocolExperiment,
    strategy: StrategyKind,
    seed: u64,
    stack: &mut Stack<T>,
    retry: Option<RetryPolicy>,
) -> TrialMeasure {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
    let mut outage = OutageDriver::new(exp.outage, seed);
    let mut repair = RepairDriver::new(exp.repair, "repair");
    let mut adversary = strategy.build(
        stack,
        "attacker",
        exp.scheme,
        exp.omega,
        exp.suspicion,
        &mut rng,
    );
    let mut probe = retry.map(|policy| GoodputProbe::new(stack, "probe", policy));
    for step in 1..=exp.max_steps {
        outage.before_step(stack, step);
        repair.before_step(stack, step);
        adversary.step(stack, &mut rng);
        if let Some(probe) = probe.as_mut() {
            probe.step(stack, step);
        }
        if stack.end_step() != CompromiseState::Intact {
            return TrialMeasure::of_protocol_trial(exp.max_steps, step, true, stack)
                .with_degrade(probe.as_mut().map(GoodputProbe::finish));
        }
        if exp.policy == Policy::Proactive {
            adversary.on_rerandomized(&mut rng);
        }
    }
    TrialMeasure::of_protocol_trial(exp.max_steps, exp.max_steps, false, stack)
        .with_degrade(probe.as_mut().map(GoodputProbe::finish))
}

/// The measured outcome of one grid cell.
#[derive(Clone, Copy, Debug)]
pub struct CellOutcome {
    /// The coordinate.
    pub cell: CampaignCell,
    /// The κ the cell's suspicion policy induces on the grid's ω
    /// (context for reading the lifetime against the abstract model).
    pub kappa: f64,
    /// Lifetime estimate (mean steps until compromise, 95% CI).
    pub estimate: Estimate,
    /// Whether any trial reached the step cap. A trial at the cap either
    /// survived it (true censoring) or fell exactly on it — the encoding
    /// cannot distinguish the two, so read the mean as a lower bound
    /// whenever this is set.
    pub censored: bool,
    /// Availability statistics across the cell's trials (downtime
    /// fraction, failover count/latency, lost requests) — meaningful
    /// once the grid's base experiment carries an
    /// [`OutageSpec`](crate::outage::OutageSpec); without one, the
    /// downtime column reads the pure compromise tail.
    pub avail: AvailStats,
}

/// All cell outcomes of one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Outcomes in grid order.
    pub cells: Vec<CellOutcome>,
}

impl CampaignReport {
    /// The outcome at a coordinate, if the grid ran it.
    pub fn find(&self, cell: &CampaignCell) -> Option<&CellOutcome> {
        self.cells.iter().find(|o| o.cell == *cell)
    }

    /// Renders the report as a CSV table (one row per cell).
    pub fn to_table(&self) -> CsvTable {
        let mut table = CsvTable::new(&[
            "window",
            "threshold",
            "np",
            "strategy",
            "kappa",
            "mean_lifetime",
            "ci_low",
            "ci_high",
            "trials",
            "censored",
            "downtime",
            "failovers",
            "failover_latency",
            "lost_requests",
        ]);
        for o in &self.cells {
            table.push_row(vec![
                o.cell.suspicion.window.to_string(),
                o.cell.suspicion.threshold.to_string(),
                o.cell.np.to_string(),
                o.cell.strategy.label().to_string(),
                fmt_num(o.kappa),
                fmt_num(o.estimate.mean),
                fmt_num(o.estimate.ci_low),
                fmt_num(o.estimate.ci_high),
                o.estimate.n.to_string(),
                o.censored.to_string(),
                fmt_avail(&o.avail.downtime),
                fmt_avail(&o.avail.failovers),
                fmt_avail(&o.avail.failover_latency),
                fmt_avail(&o.avail.lost),
            ]);
        }
        table
    }

    /// Renders the report as a JSON array (stable field order, grid
    /// order) — the determinism comparator the `campaign` binary uses
    /// and the payload of `BENCH_campaign.json`'s `cells` field.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, o) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let downtime = avail_json(&o.avail.downtime);
            let latency = avail_json(&o.avail.failover_latency);
            out.push_str(&format!(
                "{{\"window\":{},\"threshold\":{},\"np\":{},\"strategy\":\"{}\",\
                 \"kappa\":{},\"mean\":{},\"n\":{},\"downtime\":{downtime},\
                 \"failover_latency\":{latency}}}",
                o.cell.suspicion.window,
                o.cell.suspicion.threshold,
                o.cell.np,
                o.cell.strategy.label(),
                o.kappa,
                o.estimate.mean,
                o.estimate.n,
            ));
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> CampaignGrid {
        CampaignGrid {
            suspicions: vec![
                SuspicionPolicy { window: 8, threshold: 3 },
                SuspicionPolicy { window: 16, threshold: 2 },
            ],
            fleet_sizes: vec![1, 3],
            strategies: vec![StrategyKind::PacedBelowThreshold, StrategyKind::ScanThenStrike],
            base: ProtocolExperiment {
                entropy_bits: 5,
                omega: 8.0,
                max_steps: 300,
                ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
            },
        }
    }

    #[test]
    fn grid_enumerates_the_cartesian_product() {
        let grid = tiny_grid();
        let cells = grid.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        let mut seen = std::collections::HashSet::new();
        for c in &cells {
            assert!(seen.insert((
                c.suspicion.window,
                c.suspicion.threshold,
                c.np,
                c.strategy.id()
            )));
        }
    }

    #[test]
    fn experiment_patches_cell_knobs_into_the_stack() {
        let grid = tiny_grid();
        for cell in grid.cells() {
            let exp = grid.experiment(&cell);
            let stack = exp.build_stack(1);
            let cfg = stack.config();
            assert_eq!(cfg.np, cell.np);
            assert_eq!(cfg.suspicion, cell.suspicion);
            assert_eq!(stack.proxy_count(), cell.np);
        }
    }

    #[test]
    fn cell_seeds_are_content_derived_and_distinct() {
        let grid = tiny_grid();
        let mut seen = std::collections::HashSet::new();
        for cell in grid.cells() {
            let seed = cell.cell_seed(42);
            assert!(seen.insert(seed), "seed collision at {cell:?}");
            assert_eq!(seed, cell.cell_seed(42), "seed must be pure");
            assert_ne!(seed, cell.cell_seed(43), "base seed must matter");
        }
    }

    #[test]
    fn report_round_trips_cells() {
        let grid = tiny_grid();
        let report = grid.run(&Runner::with_threads(2), TrialBudget::Fixed(4), 7);
        assert_eq!(report.cells.len(), 8);
        for cell in grid.cells() {
            let outcome = report.find(&cell).expect("every cell reported");
            assert!(outcome.estimate.mean >= 1.0);
            assert_eq!(outcome.estimate.n, 4);
        }
        let table = report.to_table();
        assert_eq!(table.len(), 8);
        assert!(report.to_json().contains("\"strategy\":\"paced\""));
    }

    #[test]
    fn adaptive_budget_spends_more_on_noisier_cells() {
        let grid = tiny_grid();
        let budget = TrialBudget::TargetRse {
            target: 0.08,
            min_trials: 8,
            max_trials: 64,
            batch: 8,
        };
        let report = grid.run(&Runner::with_threads(2), budget, 11);
        let ns: Vec<u64> = report.cells.iter().map(|o| o.estimate.n).collect();
        assert!(ns.iter().all(|n| (8..=64).contains(n)), "{ns:?}");
        assert!(
            ns.iter().any(|n| *n > 8),
            "some cell must need more than the minimum: {ns:?}"
        );
    }
}
