//! Protocol-level Monte-Carlo: the real stacks under real attackers.
//!
//! One trial assembles a full [`Stack`] (randomized processes, replication
//! engines, proxies, deterministic network) and a matching attacker, then
//! walks unit time-steps until the class's compromise condition holds. Key
//! spaces are scaled down (default 2^10) so trials finish in milliseconds;
//! the *shape* of the results — who outlives whom — is what corroborates
//! the abstract models (experiment `PROTO` in DESIGN.md).

use fortress_attack::attacker::DirectAttacker;
use fortress_core::client::RetryPolicy;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::{CompromiseState, Stack, StackConfig, SystemClass};
use fortress_model::params::Policy;
use fortress_net::fault::{FaultPlan, FaultyTransport, FAULT_STREAM};
use fortress_net::sim::SimNet;
use fortress_net::Transport;
use fortress_obf::schedule::ObfuscationPolicy;
use fortress_obf::scheme::Scheme;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::faults::{FaultSpec, GoodputProbe};
use crate::outage::{OutageDriver, OutageSpec, RepairDriver, RepairSpec};
use crate::runner::{fold, Runner, TrialBudget};
use crate::scenario::TrialMeasure;
use crate::stats::Estimate;

/// Configuration of one protocol-level experiment.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolExperiment {
    /// System class under attack.
    pub class: SystemClass,
    /// Obfuscation policy.
    pub policy: Policy,
    /// Key entropy in bits (scaled down from the paper's 16 for runtime).
    pub entropy_bits: u32,
    /// Attacker's unconstrained probe rate ω per unit time-step.
    pub omega: f64,
    /// Proxy suspicion policy (S2 only; determines the effective κ).
    pub suspicion: SuspicionPolicy,
    /// Proxy fleet size `np` (S2 only; the paper deploys 3). The campaign
    /// grids sweep this axis.
    pub np: usize,
    /// Randomization scheme under attack.
    pub scheme: Scheme,
    /// Cap on steps per trial (trials hitting the cap are censored at it).
    pub max_steps: u64,
    /// Machine-outage schedule injected into the PB tier during the
    /// drive loop (the availability axis; [`OutageSpec::None`] preserves
    /// the pre-axis behavior and seeds bit-for-bit).
    pub outage: OutageSpec,
    /// Network-fault schedule wrapped around the trial's transport (the
    /// fault axis; [`FaultSpec::None`] preserves the pre-axis behavior
    /// and seeds bit-for-bit — no decorator, no goodput probe).
    pub fault: FaultSpec,
    /// Shard coordinate: run the cell as a multi-group fleet behind the
    /// key-hash directory (the shard axis;
    /// [`ShardSpec::None`](crate::fleet_mc::ShardSpec) preserves the
    /// pre-axis behavior and seeds bit-for-bit — no fleet, no workload).
    /// S2 campaign cells only; the 1-tier paths ignore it.
    pub shard: crate::fleet_mc::ShardSpec,
    /// Repair coordinate: SMR-tier crash schedule with view-change
    /// recovery and divergence-priced state transfer (the repair axis;
    /// [`RepairSpec::None`] preserves the pre-axis behavior and seeds
    /// bit-for-bit — no driver, no workload client, no repair
    /// accounting). S0 cells only; the other classes ignore it.
    pub repair: RepairSpec,
}

impl ProtocolExperiment {
    /// A default experiment against the given class and policy.
    pub fn new(class: SystemClass, policy: Policy) -> ProtocolExperiment {
        ProtocolExperiment {
            class,
            policy,
            entropy_bits: 10,
            omega: 8.0,
            suspicion: SuspicionPolicy {
                window: 64,
                threshold: 9,
            },
            np: 3,
            scheme: Scheme::Aslr,
            max_steps: 50_000,
            outage: OutageSpec::None,
            fault: FaultSpec::None,
            shard: crate::fleet_mc::ShardSpec::None,
            repair: RepairSpec::None,
        }
    }

    /// The effective κ the suspicion policy imposes on this experiment's
    /// attacker (1.0 for the 1-tier classes).
    pub fn effective_kappa(&self) -> f64 {
        match self.class {
            SystemClass::S2Fortress => {
                fortress_attack::pacing::Pacer::against(self.suspicion, self.omega).kappa()
            }
            _ => 1.0,
        }
    }

    fn obf_policy(&self) -> ObfuscationPolicy {
        match self.policy {
            Policy::Proactive => ObfuscationPolicy::proactive_unit(),
            Policy::StartupOnly => ObfuscationPolicy::StartupOnly,
        }
    }

    /// Assembles the stack one trial of this experiment attacks; `seed`
    /// drives the network, key draws and principal keys. Shared by
    /// [`ProtocolExperiment::run_once`] and the campaign grid driver,
    /// which swaps in its own adversary strategies.
    pub fn build_stack(&self, seed: u64) -> Stack {
        Stack::new(self.stack_config(seed)).expect("stack assembly is validated by construction")
    }

    /// The [`StackConfig`] one trial of this experiment runs under —
    /// shared by the bare and the fault-decorated assembly paths so the
    /// two can never drift apart, and by the trial arena, which keys
    /// stack reuse on the configuration's shape.
    pub(crate) fn stack_config(&self, seed: u64) -> StackConfig {
        StackConfig {
            class: self.class,
            entropy_bits: self.entropy_bits,
            scheme: self.scheme,
            policy: self.obf_policy(),
            suspicion: self.suspicion,
            np: self.np,
            seed,
            ..StackConfig::default()
        }
    }

    /// [`ProtocolExperiment::build_stack`] with the trial's transport
    /// wrapped in a [`FaultyTransport`] running `plan`. The decorator's
    /// RNG stream is `fold(seed, FAULT_STREAM)` — split off the trial
    /// seed exactly like the outage driver's, so it perturbs neither the
    /// stack's nor the adversary's draws.
    pub fn build_faulty_stack(&self, seed: u64, plan: FaultPlan) -> Stack<FaultyTransport<SimNet>> {
        Stack::new_faulty(self.stack_config(seed), plan, fold(seed, FAULT_STREAM))
            .expect("stack assembly is validated by construction")
    }

    /// Runs one trial; returns the 1-based step at which the system fell
    /// (or `max_steps` if censored).
    ///
    /// The S2 trial *is* a campaign cell under the paper's baseline
    /// posture — one drive loop, shared with every other strategy, so
    /// PROTO estimates and campaign `paced` cells cannot drift apart.
    pub fn run_once(&self, seed: u64) -> u64 {
        self.run_measured(seed).lifetime
    }

    /// [`ProtocolExperiment::run_once`] with the availability
    /// measurements attached: the same drive loop (identical RNG
    /// consumption, so lifetimes are bit-identical with or without the
    /// measurement), with the experiment's [`OutageSpec`] applied at the
    /// top of each step and the stack's availability counters read out
    /// at the end.
    pub fn run_measured(&self, seed: u64) -> TrialMeasure {
        if self.class == SystemClass::S2Fortress {
            return crate::campaign_mc::run_cell_measured(
                self,
                fortress_attack::campaign::StrategyKind::PacedBelowThreshold,
                seed,
            );
        }
        // Fault dispatch: `None` runs the bare transport (byte-identical
        // to the pre-axis path — no decorator, no probe, no extra RNG),
        // drawn from the worker's trial arena; `Degraded` wraps the same
        // assembly in the fault decorator and rides a goodput probe
        // along.
        match self.fault {
            FaultSpec::None => crate::arena::with_arena_stack(self.stack_config(seed), |stack| {
                self.run_direct_on(seed, stack, None)
            }),
            FaultSpec::Degraded { plan, retry } => {
                self.run_direct_on(seed, &mut self.build_faulty_stack(seed, plan), Some(retry))
            }
        }
    }

    /// The one 1-tier drive loop, generic over the transport: the
    /// baseline attacker stepped against `stack`, the outage schedule
    /// applied at the top of each step, and — when `retry` is given — a
    /// [`GoodputProbe`] stepped after the adversary.
    fn run_direct_on<T: Transport>(
        &self,
        seed: u64,
        stack: &mut Stack<T>,
        retry: Option<RetryPolicy>,
    ) -> TrialMeasure {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let mut outage = OutageDriver::new(self.outage, seed);
        let mut repair = RepairDriver::new(self.repair, "repair");
        let mut attacker = DirectAttacker::new(
            stack,
            "attacker",
            self.scheme,
            self.omega,
            &mut rng,
        );
        let mut probe = retry.map(|policy| GoodputProbe::new(stack, "probe", policy));
        for step in 1..=self.max_steps {
            outage.before_step(stack, step);
            repair.before_step(stack, step);
            attacker.step(stack, &mut rng);
            if let Some(probe) = probe.as_mut() {
                probe.step(stack, step);
            }
            let state = stack.end_step();
            if state != CompromiseState::Intact {
                return TrialMeasure::of_protocol_trial(self.max_steps, step, true, stack)
                    .with_degrade(probe.as_mut().map(GoodputProbe::finish));
            }
            if self.policy == Policy::Proactive {
                attacker.on_rerandomized(&mut rng);
            }
        }
        TrialMeasure::of_protocol_trial(self.max_steps, self.max_steps, false, stack)
            .with_degrade(probe.as_mut().map(GoodputProbe::finish))
    }

    /// Runs `trials` independent trials through the parallel runner and
    /// returns the lifetime estimate. Each trial's stack and attacker are
    /// seeded from the runner's per-trial counter seed, so the estimate
    /// is identical at any thread count.
    pub fn estimate(&self, trials: u64, base_seed: u64) -> Estimate {
        self.estimate_with(&Runner::new(), TrialBudget::Fixed(trials), base_seed)
    }

    /// [`ProtocolExperiment::estimate`] with explicit runner and budget —
    /// the hook for callers that pin thread counts (determinism tests) or
    /// want adaptive stopping. One delegation to the unified scenario
    /// surface ([`crate::scenario::run_scenario`]): `run_once` builds its
    /// own stack + attacker RNGs from the per-trial counter seed, so
    /// PROTO estimates and scenario sweeps of the same experiment are
    /// bit-identical.
    pub fn estimate_with(&self, runner: &Runner, budget: TrialBudget, base_seed: u64) -> Estimate {
        crate::scenario::run_scenario(
            crate::scenario::ScenarioSpec::Protocol(*self),
            runner,
            budget,
            base_seed,
        )
        .estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortress_model::params::{AttackParams, ProbeModel};
    use fortress_model::{expected_lifetime, SystemKind};

    /// Protocol S1SO lifetimes agree with the analytic model at scaled χ.
    #[test]
    fn s1_so_protocol_matches_model() {
        let exp = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
        };
        let est = exp.estimate(60, 1000);
        let params = AttackParams::new(256.0, 8.0).unwrap();
        let analytic = expected_lifetime(
            SystemKind::S1Pb,
            Policy::StartupOnly,
            ProbeModel::Broadcast,
            &params,
        )
        .unwrap();
        let rel = (est.mean - analytic).abs() / analytic;
        assert!(rel < 0.25, "protocol {est:?} vs analytic {analytic}");
    }

    /// Protocol S1PO lifetimes agree with 1/α at scaled χ.
    #[test]
    fn s1_po_protocol_matches_model() {
        let exp = ProtocolExperiment {
            entropy_bits: 8,
            omega: 16.0,
            max_steps: 1000,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::Proactive)
        };
        let est = exp.estimate(60, 2000);
        let analytic = 256.0 / 16.0; // 1/alpha = chi/omega
        let rel = (est.mean - analytic).abs() / analytic;
        assert!(rel < 0.3, "protocol {est:?} vs analytic {analytic}");
    }

    /// The protocol stacks reproduce S1SO → S0SO (trend 1).
    #[test]
    fn trend1_holds_at_protocol_level() {
        let s1 = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
        };
        let s0 = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            ..ProtocolExperiment::new(SystemClass::S0Smr, Policy::StartupOnly)
        };
        let e1 = s1.estimate(60, 3000);
        let e0 = s0.estimate(60, 4000);
        assert!(
            e1.mean > e0.mean,
            "S1SO ({:?}) must outlive S0SO ({:?})",
            e1,
            e0
        );
    }

    /// PO outlives SO at protocol level (trend 2, S1 slice).
    #[test]
    fn trend2_holds_at_protocol_level() {
        let po = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            max_steps: 2000,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::Proactive)
        };
        let so = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
        };
        let e_po = po.estimate(50, 5000);
        let e_so = so.estimate(50, 6000);
        assert!(
            e_po.mean > e_so.mean,
            "S1PO ({:?}) must outlive S1SO ({:?})",
            e_po,
            e_so
        );
    }

    #[test]
    fn effective_kappa_reflects_suspicion_policy() {
        let mut exp = ProtocolExperiment::new(SystemClass::S2Fortress, Policy::Proactive);
        exp.omega = 8.0;
        exp.suspicion = SuspicionPolicy {
            window: 64,
            threshold: 9,
        };
        // Safe rate 8/64 = 0.125 → kappa = 0.125/8.
        assert!((exp.effective_kappa() - 0.015625).abs() < 1e-9);
        let direct = ProtocolExperiment::new(SystemClass::S1Pb, Policy::Proactive);
        assert_eq!(direct.effective_kappa(), 1.0);
    }

    /// FORTRESS under SO with a detection-constrained attacker outlives the
    /// bare PB system under SO against the same attacker.
    #[test]
    fn proxies_add_resilience_at_protocol_level() {
        let s2 = ProtocolExperiment {
            entropy_bits: 7,
            omega: 8.0,
            suspicion: SuspicionPolicy {
                window: 32,
                threshold: 3,
            },
            max_steps: 4000,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        };
        let s1 = ProtocolExperiment {
            entropy_bits: 7,
            omega: 8.0,
            ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
        };
        let e2 = s2.estimate(40, 7000);
        let e1 = s1.estimate(40, 8000);
        assert!(
            e2.mean > e1.mean,
            "S2SO ({:?}) must outlive S1SO ({:?}) when proxies pace the attacker",
            e2,
            e1
        );
    }
}
