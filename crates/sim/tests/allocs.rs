//! Allocation contracts on the Monte-Carlo hot path, counted at the
//! global allocator.
//!
//! Two contracts the trial-arena work is built on:
//!
//! 1. **A quiescent pump is allocation-free.** Once a stack has settled
//!    (no in-flight traffic), `Stack::pump` must not touch the
//!    allocator at all — the scratch buffers, inboxes and FIFO queues
//!    all reuse their capacity.
//! 2. **An arena-reused trial allocates a bounded amount.** With the
//!    trial arena warm, a campaign trial re-keys and rewinds an
//!    existing stack instead of rebuilding it; the per-trial allocation
//!    count must stay under a tight cap (a fresh build alone costs ~100
//!    allocations before the first step runs).
//!
//! The counter is process-global, so the tests serialize on a mutex —
//! the harness runs `#[test]`s on concurrent threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use fortress_attack::campaign::StrategyKind;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::{Stack, StackConfig, SystemClass};
use fortress_model::params::Policy;
use fortress_sim::campaign_mc::run_cell_measured;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::trial_seed;
use fortress_sim::{arena_stats, clear_arena, fleet_arena_stats};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// Counts allocations only; frees are pass-through. `realloc` counts as
// an allocation event (capacity growth is exactly what the contracts
// forbid).
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: Counting = Counting;

/// Serializes the measuring tests: the counter is process-global.
static MEASURE: Mutex<()> = Mutex::new(());

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn quiescent_pump_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let mut stack = Stack::new(StackConfig {
        class: SystemClass::S2Fortress,
        seed: 7,
        ..StackConfig::default()
    })
    .expect("assembly");
    // Settle: deliver boot-time traffic and let scratch buffers size
    // themselves.
    for _ in 0..16 {
        stack.pump();
    }
    let before = allocs();
    for _ in 0..1_000 {
        stack.pump();
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "a quiescent pump step must not allocate ({} allocations over \
         1000 steps)",
        after - before
    );
}

#[test]
fn arena_reused_trials_stay_under_the_allocation_cap() {
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let exp = ProtocolExperiment {
        entropy_bits: 8,
        omega: 8.0,
        max_steps: 4_000,
        suspicion: SuspicionPolicy { window: 64, threshold: 9 },
        np: 3,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    };
    clear_arena();
    // Warm the arena: the first trial builds the stack shell.
    let _ = run_cell_measured(&exp, StrategyKind::PacedBelowThreshold, trial_seed(42, 0));
    let (hits0, misses) = arena_stats();
    assert!(misses >= 1, "the cold trial must miss the arena");

    let n = 50u64;
    let before = allocs();
    let mut steps = 0u64;
    for i in 1..=n {
        let m = run_cell_measured(&exp, StrategyKind::PacedBelowThreshold, trial_seed(42, i));
        steps += m.lifetime;
    }
    let after = allocs();
    let (hits1, _) = arena_stats();
    assert_eq!(
        hits1 - hits0,
        n,
        "every warm trial must reuse the arena shell"
    );
    let per_trial = (after - before) as f64 / n as f64;
    let per_step = (after - before) as f64 / steps as f64;
    // Measured ≈ 2 allocations per step now that every dispatch path
    // (probe frames, PB heartbeats, replies) encodes into the stack's
    // cycled scratch, sub-inline-cap payloads never hit the heap, and
    // the proxy tier borrows forwarded requests straight through (the
    // suspicion gate runs on the wire view and the verbatim payload is
    // re-broadcast — no `to_owned`, no output vec, no second encode).
    // A fresh build alone costs ~100 allocations, so the cap both
    // bounds regressions and proves the arena is actually reused.
    assert!(
        per_step <= 3.0,
        "arena-reused trials allocate too much: {per_step:.1} allocs/step \
         ({per_trial:.0} per trial over {n} trials)"
    );
}

#[test]
fn fleet_arena_is_hit_by_sharded_trials() {
    use fortress_attack::shard::ShardPlacement;
    use fortress_sim::fleet_mc::{run_fleet_measured, ShardSpec};
    let _guard = MEASURE.lock().unwrap_or_else(|e| e.into_inner());
    let exp = ProtocolExperiment {
        entropy_bits: 6,
        omega: 8.0,
        max_steps: 80,
        shard: ShardSpec::Sharded {
            shards: 2,
            zipf_s: 1.2,
            placement: ShardPlacement::Concentrate,
            rebalance_at: 0,
        },
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    };
    clear_arena();
    let n = 12u64;
    for i in 0..n {
        let _ = run_fleet_measured(&exp, StrategyKind::PacedBelowThreshold, trial_seed(43, i));
    }
    let (hits, misses) = fleet_arena_stats();
    assert_eq!(misses, 1, "one cold build assembles the fleet shell");
    assert_eq!(
        hits,
        n - 1,
        "every subsequent sharded trial must rewind the cached fleet"
    );
}
