//! The SMR repair-economics axis, asserted end-to-end:
//!
//! 1. **Golden pin** — the repair slice (a vacuous coordinate, a single
//!    leader crash, and a two-crash schedule under both the staggered
//!    and the storm recovery disciplines) reproduces a committed golden
//!    CSV bit-for-bit through the cell-parallel scheduler, at 1 and 8
//!    runner threads. Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p fortress-sim --test repair`.
//! 2. **Passthrough** — an explicit `.repairs(vec![None])` axis compiles
//!    to the same labels and content seeds as a sweep that never
//!    mentions the axis, and the campaign golden (whose cells all carry
//!    `RepairSpec::None`) reproduces byte-for-byte through today's
//!    scheduler: adding the axis changed no legacy bits.
//! 3. **Directionality** — a crashed S0 leader recovers through the
//!    VSR view-change protocol, so the measured view-change latency
//!    sits at the SMR view timer (30 steps), not the PB failover
//!    timeout (20); and correlated bring-ups (a recovery storm) cost
//!    strictly more downtime than staggered recoveries of the *same*
//!    crash schedule on paired trial seeds — divergence-priced state
//!    transfer is what makes the difference.

mod common;

use common::{small_grid, GOLDEN_PATH as CAMPAIGN_GOLDEN, GOLDEN_SEED as CAMPAIGN_SEED};
use fortress_sim::outage::RepairSpec;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::{trial_seed, Runner, TrialBudget};
use fortress_sim::scenario::{repair_base, repair_sweep, Scenario, ScenarioSpec, SweepScheduler, SweepSpec};

/// Seed of the pinned repair sweep.
const GOLDEN_SEED: u64 = 0x0005_AA2E;

/// Path of the committed golden CSV.
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/repair_small.csv");

/// Contract 1: the repair slice is bit-identical serial vs cell-parallel
/// and pinned by a committed golden file.
#[test]
fn repair_sweep_matches_golden_file_at_any_thread_count() {
    let cells = repair_sweep(GOLDEN_SEED);
    assert!(
        cells.iter().any(|c| c.label.contains("repair=smr-stag:1"))
            && cells.iter().any(|c| c.label.contains("repair=smr-stag:2"))
            && cells.iter().any(|c| c.label.contains("repair=smr-storm:2")),
        "the slice must carry one-crash, staggered and storm schedules: {:?}",
        cells.iter().map(|c| c.label.clone()).collect::<Vec<_>>()
    );
    assert!(
        cells.iter().any(|c| !c.label.contains("repair=")),
        "the slice must keep a vacuous coordinate as its passthrough control"
    );
    let budget = TrialBudget::Fixed(16);
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "repair sweep diverged between 1 and 8 threads"
    );
    // Repair-bearing cells armed the SMR accounting, so the repair
    // columns are in; the vacuous cell shows `-` there.
    let csv = serial.to_table().to_csv();
    let header = csv.lines().next().unwrap();
    assert!(
        header.contains("view_changes") && header.contains("storm_queue_depth"),
        "repair columns must surface in a repair-bearing sweep: {header}"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &csv).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "repair sweep drifted from the golden pin; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Contract 2a: an explicit `.repairs(vec![None])` axis is vacuous — the
/// compiled cells carry the same labels and content seeds as a sweep
/// that never mentions the axis.
#[test]
fn explicit_none_repair_axis_is_vacuous() {
    let base = repair_base();
    let implicit = SweepSpec::new(base).compile(0xFACE);
    let explicit = SweepSpec::new(base)
        .repairs(vec![RepairSpec::None])
        .compile(0xFACE);
    assert_eq!(implicit.len(), explicit.len());
    for (a, b) in implicit.iter().zip(&explicit) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed);
        assert!(!a.label.contains("repair="), "None must not label cells");
    }
}

/// Contract 2b: the campaign golden's cells all sit on the vacuous
/// repair coordinate, and re-running them through today's scheduler —
/// repair axis compiled in — reproduces the pre-axis golden
/// byte-for-byte.
#[test]
fn none_repair_cells_reproduce_the_campaign_golden() {
    let grid = small_grid();
    assert!(
        grid.base.repair.is_none(),
        "the pinned grid must run on the no-repair coordinate"
    );
    let report = grid.run(&Runner::with_threads(2), TrialBudget::Fixed(16), CAMPAIGN_SEED);
    let golden = std::fs::read_to_string(CAMPAIGN_GOLDEN)
        .expect("campaign golden missing — regenerate via the campaign suite");
    assert_eq!(
        report.to_table().to_csv(),
        golden,
        "RepairSpec::None cells must reproduce the pre-axis campaign golden"
    );
}

/// Contract 3a (the acceptance directional test on latency): an S0
/// leader crash recovers through the view-change protocol, whose
/// detection window is the SMR `leader_timeout` (30 steps) — measurably
/// distinct from the PB failover timeout (20 steps). If crash handling
/// ever regressed to the PB path, this latency would land near 20.
#[test]
fn view_change_latency_tracks_the_view_timer_not_the_pb_timeout() {
    let exp = ProtocolExperiment {
        repair: RepairSpec::Smr {
            crashes: 1,
            crash_at: 40,
            stagger: 60,
            downtime: 30,
            bandwidth: 1,
            storm: false,
        },
        ..repair_base()
    };
    let trials = 16;
    let (mut latency_sum, mut latency_n) = (0.0, 0u32);
    for i in 0..trials {
        let m = ScenarioSpec::Protocol(exp).run_measured(trial_seed(0x4E9A_0001, i));
        let repair = m.avail.unwrap().repair.expect("repair cells carry a point");
        if let Some(latency) = repair.view_change_latency {
            latency_sum += latency;
            latency_n += 1;
        }
    }
    assert!(latency_n >= trials as u32 / 2, "most trials complete a view change");
    let mean = latency_sum / f64::from(latency_n);
    assert!(
        mean > 25.0,
        "view-change latency must track leader_timeout = 30, not the \
         20-step PB failover timeout: got {mean:.1}"
    );
    assert!(
        mean < 45.0,
        "view-change latency should sit near leader_timeout = 30: got {mean:.1}"
    );
}

/// Contract 3b (the acceptance directional test on storm economics): the
/// same two-crash schedule costs strictly more downtime when every
/// bring-up lands together (recovery storm) than when each machine
/// rejoins on its own clock — the aligned rejoiners hold the quorum
/// hostage while their accumulated divergence drains through the shared
/// bandwidth budget head-of-line.
#[test]
fn recovery_storm_downtime_strictly_exceeds_staggered_recovery() {
    let schedule = |storm| RepairSpec::Smr {
        crashes: 2,
        crash_at: 40,
        stagger: 60,
        downtime: 30,
        bandwidth: 1,
        storm,
    };
    let base = repair_base();
    let staggered = ProtocolExperiment { repair: schedule(false), ..base };
    let storm = ProtocolExperiment { repair: schedule(true), ..base };
    let trials = 16;
    let (mut down_stag, mut down_storm) = (0.0, 0.0);
    let (mut queue_stag, mut queue_storm) = (0.0f64, 0.0f64);
    for i in 0..trials {
        let seed = trial_seed(0x4E9A_0002, i);
        let s = ScenarioSpec::Protocol(staggered).run_measured(seed).avail.unwrap();
        let w = ScenarioSpec::Protocol(storm).run_measured(seed).avail.unwrap();
        down_stag += s.downtime_fraction;
        down_storm += w.downtime_fraction;
        queue_stag = queue_stag.max(s.repair.unwrap().storm_queue_depth);
        queue_storm = queue_storm.max(w.repair.unwrap().storm_queue_depth);
    }
    let (down_stag, down_storm) = (down_stag / trials as f64, down_storm / trials as f64);
    assert!(
        down_storm > down_stag,
        "correlated bring-ups must cost strictly more downtime than \
         staggered recovery: storm {down_storm:.3} vs staggered {down_stag:.3}"
    );
    assert!(
        queue_storm > queue_stag,
        "only the storm contends for transfer bandwidth: storm peak queue \
         {queue_storm} vs staggered {queue_stag}"
    );
}
