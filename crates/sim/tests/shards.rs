//! The multi-tenant shard axis, asserted end-to-end:
//!
//! 1. **Golden pin** — the shard slice (a vacuous coordinate, both
//!    cross-shard placements on a 3-group fleet, and a concentrated
//!    fleet with a mid-trial rebalance) reproduces a committed golden
//!    CSV bit-for-bit through the cell-parallel scheduler, at 1 and 8
//!    runner threads. Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p fortress-sim --test shards`.
//! 2. **Passthrough** — an explicit `.shards(vec![None])` axis compiles
//!    to the same labels and content seeds as a sweep that never
//!    mentions the axis, and the campaign golden (whose cells all carry
//!    `ShardSpec::None`) reproduces byte-for-byte through today's
//!    scheduler: adding the axis changed no legacy bits.
//! 3. **Directionality** — concentrating the probe budget on the
//!    hottest shard ends that shard's lifetime strictly sooner than
//!    spreading the same budget thin, on paired trial seeds (the
//!    acceptance directional test), and the sweep-level
//!    [`SweepReport::hot_shard_lifetime_ratio`] lands below 1.
//!
//! [`SweepReport::hot_shard_lifetime_ratio`]:
//! fortress_sim::scenario::SweepReport::hot_shard_lifetime_ratio

mod common;

use common::{small_grid, GOLDEN_PATH as CAMPAIGN_GOLDEN, GOLDEN_SEED as CAMPAIGN_SEED};
use fortress_attack::campaign::StrategyKind;
use fortress_attack::shard::ShardPlacement;
use fortress_sim::fleet_mc::{run_fleet_measured, ShardSpec};
use fortress_sim::runner::{trial_seed, Runner, TrialBudget};
use fortress_sim::scenario::{shard_base, shard_sweep, SweepScheduler, SweepSpec};

/// Seed of the pinned shard sweep.
const GOLDEN_SEED: u64 = 0x0005_AA2D;

/// Path of the committed golden CSV.
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/shard_small.csv");

/// Contract 1: the shard slice is bit-identical serial vs cell-parallel
/// and pinned by a committed golden file.
#[test]
fn shard_sweep_matches_golden_file_at_any_thread_count() {
    let cells = shard_sweep(GOLDEN_SEED);
    assert!(
        cells.iter().any(|c| c.label.contains("shard=g3") && c.label.contains("concentrate"))
            && cells.iter().any(|c| c.label.contains("spread"))
            && cells.iter().any(|c| c.label.contains("reb@6")),
        "the slice must carry both placements and a rebalance: {:?}",
        cells.iter().map(|c| c.label.clone()).collect::<Vec<_>>()
    );
    assert!(
        cells.iter().any(|c| !c.label.contains("shard=")),
        "the slice must keep a vacuous coordinate as its passthrough control"
    );
    let budget = TrialBudget::Fixed(16);
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "shard sweep diverged between 1 and 8 threads"
    );
    // Sharded cells measured fleet observables, so the shard columns are
    // in; the vacuous cell shows `-` there.
    let csv = serial.to_table().to_csv();
    let header = csv.lines().next().unwrap();
    assert!(
        header.contains("hot_lifetime") && header.contains("moved_requests"),
        "shard columns must surface in a shard-bearing sweep: {header}"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &csv).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "shard sweep drifted from the golden pin; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Contract 2a: an explicit `.shards(vec![None])` axis is vacuous — the
/// compiled cells carry the same labels and content seeds as a sweep
/// that never mentions the axis.
#[test]
fn explicit_none_shard_axis_is_vacuous() {
    let base = shard_base();
    let implicit = SweepSpec::new(base).compile(0xFACE);
    let explicit = SweepSpec::new(base)
        .shards(vec![ShardSpec::None])
        .compile(0xFACE);
    assert_eq!(implicit.len(), explicit.len());
    for (a, b) in implicit.iter().zip(&explicit) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed);
        assert!(!a.label.contains("shard="), "None must not label cells");
    }
}

/// Contract 2b: the campaign golden's cells all sit on the vacuous
/// shard coordinate, and re-running them through today's scheduler —
/// shard axis compiled in — reproduces the pre-axis golden
/// byte-for-byte.
#[test]
fn none_shard_cells_reproduce_the_campaign_golden() {
    let grid = small_grid();
    assert!(
        grid.base.shard.is_none(),
        "the pinned grid must run on the no-shard coordinate"
    );
    let report = grid.run(&Runner::with_threads(2), TrialBudget::Fixed(16), CAMPAIGN_SEED);
    let golden = std::fs::read_to_string(CAMPAIGN_GOLDEN)
        .expect("campaign golden missing — regenerate via the campaign suite");
    assert_eq!(
        report.to_table().to_csv(),
        golden,
        "ShardSpec::None cells must reproduce the pre-axis campaign golden"
    );
}

/// Contract 3 (the acceptance directional test): at matched trial
/// seeds, concentrating the probe budget on the hottest shard ends that
/// shard strictly sooner on average than spreading it across the
/// fleet — the per-group rate is `Nω` versus `ω`, and the hottest-shard
/// lifetime tracks it.
#[test]
fn concentrating_on_the_hottest_shard_shortens_its_lifetime() {
    let spec = |placement| ShardSpec::Sharded {
        shards: 3,
        zipf_s: 1.2,
        placement,
        rebalance_at: 0,
    };
    let base = shard_base();
    let conc = fortress_sim::protocol_mc::ProtocolExperiment {
        shard: spec(ShardPlacement::Concentrate),
        ..base
    };
    let spread = fortress_sim::protocol_mc::ProtocolExperiment {
        shard: spec(ShardPlacement::Spread),
        ..base
    };
    let trials = 32;
    let (mut hot_conc, mut hot_spread) = (0.0, 0.0);
    for i in 0..trials {
        let seed = trial_seed(0x5AAD_D172, i);
        let c = run_fleet_measured(&conc, StrategyKind::PacedBelowThreshold, seed);
        let s = run_fleet_measured(&spread, StrategyKind::PacedBelowThreshold, seed);
        hot_conc += c.avail.unwrap().shard.unwrap().hot_lifetime;
        hot_spread += s.avail.unwrap().shard.unwrap().hot_lifetime;
    }
    let (hot_conc, hot_spread) = (hot_conc / trials as f64, hot_spread / trials as f64);
    assert!(
        hot_conc < hot_spread,
        "a concentrated probe budget must end the hottest shard sooner: \
         concentrate {hot_conc:.1} vs spread {hot_spread:.1}"
    );
}

/// Contract 3 at the report level: the pinned slice's
/// concentrate/spread ratio of hottest-shard lifetimes lands below 1.
#[test]
fn report_hot_shard_lifetime_ratio_favors_spreading() {
    let cells = shard_sweep(GOLDEN_SEED);
    let report = SweepScheduler::new(&Runner::new(), TrialBudget::Fixed(16)).run(&cells);
    let ratio = report
        .hot_shard_lifetime_ratio()
        .expect("the slice carries both placements");
    assert!(
        ratio < 1.0,
        "concentrate/spread hottest-shard lifetime ratio must sit below 1: {ratio:.3}"
    );
}
