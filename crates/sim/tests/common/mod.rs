//! Shared fixtures for the campaign/scheduler integration suites — one
//! definition of the small pinned grid, so the golden-file tests and the
//! scheduler bit-identity tests can never drift onto different cells.

use fortress_attack::campaign::StrategyKind;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::SystemClass;
use fortress_model::params::Policy;
use fortress_sim::campaign_mc::CampaignGrid;
use fortress_sim::protocol_mc::ProtocolExperiment;

/// Seed of the pinned golden grid.
pub const GOLDEN_SEED: u64 = 0x90_1D;

/// Path of the committed golden CSV.
pub const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/campaign_small.csv"
);

/// The small grid pinned by the golden file: 2 suspicion policies × 2
/// fleet sizes × 2 strategies at 2⁵ keys, 400-step cap.
pub fn small_grid() -> CampaignGrid {
    CampaignGrid {
        suspicions: vec![
            SuspicionPolicy { window: 8, threshold: 3 },
            SuspicionPolicy { window: 32, threshold: 2 },
        ],
        fleet_sizes: vec![1, 3],
        strategies: vec![StrategyKind::PacedBelowThreshold, StrategyKind::ScanThenStrike],
        base: ProtocolExperiment {
            entropy_bits: 5,
            omega: 8.0,
            max_steps: 400,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        },
    }
}
