//! The sweep scheduler's contracts, asserted end-to-end:
//!
//! 1. **Golden equivalence** — the cell-parallel `SweepScheduler` (both
//!    through the `CampaignGrid` shim and driven directly) reproduces
//!    the committed campaign golden CSV bit-for-bit, at 1 and 8 runner
//!    threads — i.e. lifting cells onto the shared pool changed no
//!    physics and no floating-point reduction order.
//! 2. **Reference equivalence** — scheduler output equals the
//!    cell-at-a-time `CampaignGrid::run_cell` reference path exactly,
//!    under fixed *and* adaptive budgets.
//! 3. **Axis growth** — a sweep spanning SO/PO and the `SybilPaced`
//!    strategy is thread-count invariant, and its `CrossCheck` reads
//!    the abstract model at each rate-disciplined cell.

mod common;

use common::{small_grid, GOLDEN_PATH, GOLDEN_SEED};
use fortress_attack::campaign::StrategyKind;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::SystemClass;
use fortress_model::params::Policy;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::{Runner, TrialBudget};
use fortress_sim::scenario::{
    CrossCheck, ScenarioSpec, SweepCell, SweepScheduler, SweepSpec, CELL_CHUNK,
};

/// Contract 1: the scheduler (via the `CampaignGrid` shim) reproduces
/// the committed golden file — the one generated before cells went
/// parallel — at more than one thread count, and the scheduler driven
/// directly over the grid's sweep cells produces the very same table.
#[test]
fn scheduler_reproduces_the_campaign_golden_file() {
    let grid = small_grid();
    let budget = TrialBudget::Fixed(16);
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate via the campaign suite");
    for threads in [1, 8] {
        let report = grid.run(&Runner::with_threads(threads), budget, GOLDEN_SEED);
        assert_eq!(
            report.to_table().to_csv(),
            golden,
            "scheduler at {threads} threads diverged from the golden pin"
        );
    }
    // Direct scheduler drive, no shim: same cells, same bits.
    let direct = SweepScheduler::new(&Runner::with_threads(4), budget)
        .with_chunk(CELL_CHUNK)
        .run(&grid.sweep_cells(GOLDEN_SEED));
    let shim = grid.run(&Runner::with_threads(4), budget, GOLDEN_SEED);
    for (a, b) in direct.cells.iter().zip(&shim.cells) {
        assert_eq!(a.estimate, b.estimate, "direct vs shim at {}", a.cell.label);
        assert_eq!(a.censored, b.censored);
    }
}

/// Contract 2: scheduler output is bit-identical to the serial
/// cell-at-a-time reference path, fixed and adaptive budgets alike.
#[test]
fn scheduler_matches_the_cell_at_a_time_reference() {
    let grid = small_grid();
    let runner = Runner::with_threads(4);
    for budget in [
        TrialBudget::Fixed(12),
        TrialBudget::TargetRse {
            target: 0.08,
            min_trials: 8,
            max_trials: 64,
            batch: 8,
        },
    ] {
        let scheduled = grid.run(&runner, budget, 7);
        for (cell, outcome) in grid.cells().into_iter().zip(&scheduled.cells) {
            let reference = grid.run_cell(cell, &runner, budget, 7);
            assert_eq!(
                outcome.estimate, reference.estimate,
                "cell {cell:?} diverged from the reference path under {budget:?}"
            );
            assert_eq!(outcome.censored, reference.censored);
        }
    }
}

/// A panicking trial inside a *cell batch* must fail the whole sweep
/// with the documented poisoned-chunk message — through the scheduler's
/// two-level queue, exactly as `Runner::run` fails — never hang on the
/// result channel (the scheduler's own sender keeps it open) and never
/// silently drop the poisoned cell from the report.
#[test]
fn poisoned_cell_batch_fails_the_sweep_fast() {
    // np = 0 makes `build_stack` panic inside every trial of that cell:
    // a realistic poisoned cell (bad axis value), not a bespoke hook.
    let poisoned = ProtocolExperiment {
        entropy_bits: 5,
        np: 0,
        max_steps: 100,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    };
    let healthy = ProtocolExperiment {
        entropy_bits: 5,
        max_steps: 100,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    };
    let cells = vec![
        SweepCell::of(
            ScenarioSpec::Campaign {
                experiment: healthy,
                strategy: StrategyKind::PacedBelowThreshold,
            },
            3,
        ),
        SweepCell::of(
            ScenarioSpec::Campaign {
                experiment: poisoned,
                strategy: StrategyKind::PacedBelowThreshold,
            },
            3,
        ),
    ];
    // A dedicated runner: the panic degrades its pool by design.
    let runner = Runner::with_threads(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SweepScheduler::new(&runner, TrialBudget::Fixed(8)).run(&cells)
    }));
    let message = match outcome {
        Err(cause) => cause
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| cause.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default(),
        Ok(report) => panic!(
            "a poisoned cell batch must fail the sweep, got a report of {} cells",
            report.cells.len()
        ),
    };
    assert!(
        message.contains("panicked on a pooled worker"),
        "the documented fail-fast message must surface, got: {message}"
    );
}

/// Contract 3: the grown axis space — PO policy cells and the Sybil
/// adversary — is thread-count invariant through the scheduler, and the
/// cross-check reads the abstract model at every rate-disciplined cell.
#[test]
fn grown_axes_are_thread_invariant_and_cross_checked() {
    let cells = SweepSpec::new(ProtocolExperiment {
        entropy_bits: 5,
        omega: 8.0,
        max_steps: 400,
        ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
    })
    .policies(Policy::ALL.to_vec())
    .suspicions(vec![SuspicionPolicy { window: 8, threshold: 3 }])
    .strategies(vec![
        StrategyKind::PacedBelowThreshold,
        StrategyKind::SybilPaced { identities: 4 },
        StrategyKind::ScanThenStrike,
    ])
    .compile(0xA7E5);
    assert_eq!(cells.len(), 6, "2 policies × 3 strategies");

    let budget = TrialBudget::TargetRse {
        target: 0.1,
        min_trials: 8,
        max_trials: 40,
        batch: 8,
    };
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "sweep diverged between 1 and 8 threads"
    );

    let check = CrossCheck::of(&pooled);
    // paced + sybil per policy have a κ; scan-then-strike does not.
    assert_eq!(check.rows.len(), 4);
    for row in &check.rows {
        assert!(row.predicted.is_finite() && row.predicted > 0.0, "{row:?}");
        assert!(row.ratio.is_finite() && row.ratio > 0.0, "{row:?}");
    }
    // The Sybil fleet's κ is a strict multiple of the paced κ at the
    // same coordinate, so its predicted lifetime must be shorter.
    let paced_so = &check.rows[0];
    let sybil_so = &check.rows[1];
    assert!(sybil_so.kappa > paced_so.kappa);
    assert!(sybil_so.predicted < paced_so.predicted);
}
