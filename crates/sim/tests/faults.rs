//! The network-fault axis, asserted end-to-end:
//!
//! 1. **Golden pin** — the fault-bearing sweep (clean / light-loss /
//!    heavy-loss coordinates on fortified S2 and bare-PB S1) reproduces
//!    a committed golden CSV bit-for-bit through the cell-parallel
//!    scheduler, at 1 and 8 runner threads. Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p fortress-sim --test faults`.
//! 2. **Passthrough** — the campaign golden cells all carry
//!    `FaultSpec::None`, and re-running them through the scheduler
//!    reproduces the pre-axis golden byte-for-byte: adding the axis
//!    changed no legacy bits. An explicit `.faults(vec![None])` sweep
//!    compiles to the same cells as an unset axis (vacuous collapse).
//! 3. **Directionality** — goodput is monotone non-increasing in the
//!    loss rate; at 10% per-link loss a retrying client achieves
//!    strictly higher goodput than a retry-free client on paired seeds
//!    (the acceptance directional test); and the fortified stack's
//!    multipath proxy fleet keeps goodput at or above bare PB's under
//!    identical fault schedules and paired seeds.

mod common;

use common::{small_grid, GOLDEN_PATH as CAMPAIGN_GOLDEN, GOLDEN_SEED as CAMPAIGN_SEED};
use fortress_core::client::RetryPolicy;
use fortress_core::system::SystemClass;
use fortress_net::fault::FaultPlan;
use fortress_sim::faults::FaultSpec;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::{Runner, TrialBudget};
use fortress_sim::scenario::{fault_base, fault_sweep, SweepScheduler, SweepSpec};

/// Seed of the pinned fault sweep.
const GOLDEN_SEED: u64 = 0x000F_A017;

/// Path of the committed golden CSV.
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fault_small.csv");

/// A loss-only fault coordinate with the given retry policy.
fn lossy(loss: f64, retry: RetryPolicy) -> FaultSpec {
    FaultSpec::Degraded {
        plan: FaultPlan::lossy(loss),
        retry,
    }
}

/// Contract 1: the fault-bearing sweep is bit-identical serial vs
/// cell-parallel and pinned by a committed golden file — the fault
/// axis's analogue of the availability golden.
#[test]
fn fault_sweep_matches_golden_file_at_any_thread_count() {
    let cells = fault_sweep(GOLDEN_SEED);
    assert!(
        cells.iter().any(|c| c.label.contains("fault=loss:0.05"))
            && cells.iter().any(|c| c.label.contains("fault=loss:0.1")),
        "the sweep must carry at least two fault plans: {:?}",
        cells.iter().map(|c| c.label.clone()).collect::<Vec<_>>()
    );
    let budget = TrialBudget::Fixed(16);
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "fault sweep diverged between 1 and 8 threads"
    );
    // Degraded cells measured goodput, so the degradation columns are
    // in; the None cells show `-` there (no probe ran).
    let csv = serial.to_table().to_csv();
    let header = csv.lines().next().unwrap();
    assert!(
        header.contains("goodput") && header.contains("retries_per_req"),
        "degradation columns must surface in a fault-bearing sweep: {header}"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &csv).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "fault sweep drifted from the golden pin; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// Contract 2a: every campaign-golden cell carries `FaultSpec::None`,
/// and running them through today's scheduler — fault axis compiled in —
/// reproduces the pre-axis golden byte-for-byte.
#[test]
fn none_fault_cells_reproduce_the_campaign_golden() {
    let grid = small_grid();
    assert!(
        grid.base.fault.is_none(),
        "the pinned grid must run on the no-fault coordinate"
    );
    let report = grid.run(&Runner::with_threads(2), TrialBudget::Fixed(16), CAMPAIGN_SEED);
    let golden = std::fs::read_to_string(CAMPAIGN_GOLDEN)
        .expect("campaign golden missing — regenerate via the campaign suite");
    assert_eq!(
        report.to_table().to_csv(),
        golden,
        "FaultSpec::None cells must reproduce the pre-axis campaign golden"
    );
}

/// Contract 2b: an explicit `.faults(vec![None])` axis is vacuous — the
/// compiled cells carry the same labels and content seeds as a sweep
/// that never mentions the axis.
#[test]
fn explicit_none_fault_axis_is_vacuous() {
    let base = fault_base(SystemClass::S1Pb);
    let implicit = SweepSpec::new(base).compile(0xFACE);
    let explicit = SweepSpec::new(base)
        .faults(vec![FaultSpec::None])
        .compile(0xFACE);
    assert_eq!(implicit.len(), explicit.len());
    for (a, b) in implicit.iter().zip(&explicit) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.seed, b.seed);
        assert!(!a.label.contains("fault="), "None must not label cells");
    }
}

/// Contract 3a: goodput is monotone non-increasing in the loss rate at
/// a fixed retry policy (small tolerance for Monte-Carlo noise; the
/// axis spans a clean-to-half-lost spread so the signal dwarfs it).
#[test]
fn goodput_is_monotone_non_increasing_in_loss() {
    let retry = RetryPolicy::retrying(8, 2, 2);
    let cells = SweepSpec::new(fault_base(SystemClass::S1Pb))
        .faults(vec![
            lossy(0.0, retry),
            lossy(0.10, retry),
            lossy(0.50, retry),
        ])
        .compile(0xD0_72);
    let report = SweepScheduler::new(&Runner::new(), TrialBudget::Fixed(32)).run(&cells);
    let goodputs: Vec<f64> = report
        .cells
        .iter()
        .map(|o| {
            assert!(o.avail.goodput.n() > 0, "degraded cells must probe");
            o.avail.goodput.mean()
        })
        .collect();
    // Not exactly 1.0: trials the attacker ends leave the last request
    // in flight, and an abandoned request counts against goodput.
    assert!(
        goodputs[0] > 0.95,
        "a lossless plan must serve nearly every request: {goodputs:?}"
    );
    for pair in goodputs.windows(2) {
        assert!(
            pair[1] <= pair[0] + 0.02,
            "goodput grew as loss grew: {goodputs:?}"
        );
    }
    assert!(
        goodputs[2] < goodputs[0] - 0.1,
        "half the links lost must cost real goodput: {goodputs:?}"
    );
}

/// Contract 3b (the acceptance directional test): under a 10% per-link
/// loss plan, a client with retries achieves strictly higher goodput
/// than a retry-free client on paired seeds. Paired explicitly — the
/// two coordinates differ in retry policy, so their *content* seeds
/// would decorrelate; pinning the trial seeds isolates the policy's
/// effect on the same fault draws.
#[test]
fn retrying_client_beats_retry_free_at_ten_percent_loss() {
    let plan = FaultPlan::lossy(0.10);
    let base = fault_base(SystemClass::S1Pb);
    let retrying = ProtocolExperiment {
        fault: FaultSpec::Degraded {
            plan,
            retry: RetryPolicy::retrying(8, 3, 2),
        },
        ..base
    };
    let bare = ProtocolExperiment {
        fault: FaultSpec::Degraded {
            plan,
            retry: RetryPolicy::no_retry(8),
        },
        ..base
    };
    let (mut with_retry, mut without, mut retries_spent) = (0.0, 0.0, 0.0);
    let trials = 32;
    for i in 0..trials {
        let seed = 0xBEEF_0000 + i;
        let r = retrying.run_measured(seed).avail.unwrap().degrade.unwrap();
        let n = bare.run_measured(seed).avail.unwrap().degrade.unwrap();
        with_retry += r.goodput_fraction;
        without += n.goodput_fraction;
        retries_spent += r.retries_per_request;
    }
    let (with_retry, without) = (with_retry / trials as f64, without / trials as f64);
    assert!(
        retries_spent > 0.0,
        "the retrying client must actually spend retries at 10% loss"
    );
    assert!(
        with_retry > without,
        "retries must buy goodput at 10% loss: {with_retry:.4} vs {without:.4}"
    );
    assert!(
        without < 0.95,
        "a retry-free client at 10% per-link loss must visibly degrade: {without:.4}"
    );
}

/// Contract 3c: under an identical fault schedule and paired seeds, the
/// fortified stack's goodput does not fall below bare PB's — the proxy
/// fleet is a multipath hedge (a request survives if any proxy path
/// does), which is the fault axis's version of the paper's fortified-
/// vs-bare comparison. Probe-only stacks isolate the network claim: with
/// an adversary crashing proxies, loss couples into suspicion's crash
/// attribution (a lost server reply leaves the probe's request the
/// oldest unanswered entry, so the *probe* takes the blame), and the
/// sweep — not this directional pin — is the place to study that.
#[test]
fn fortified_goodput_not_below_bare_pb_on_paired_fault_schedules() {
    use fortress_core::system::{Stack, StackConfig};
    use fortress_obf::schedule::ObfuscationPolicy;
    use fortress_sim::faults::GoodputProbe;

    let run = |class: SystemClass, seed: u64| {
        let mut stack = Stack::new_faulty(
            StackConfig {
                class,
                policy: ObfuscationPolicy::StartupOnly,
                seed,
                ..StackConfig::default()
            },
            FaultPlan::lossy(0.10),
            seed ^ 0x00FA_0175,
        )
        .expect("valid stack");
        let mut probe = GoodputProbe::new(&mut stack, "probe", RetryPolicy::no_retry(8));
        for step in 1..=200 {
            probe.step(&mut stack, step);
            stack.end_step();
        }
        probe.finish().goodput_fraction
    };
    let (mut fortified, mut bare) = (0.0, 0.0);
    let trials = 32;
    for i in 1..=trials {
        fortified += run(SystemClass::S2Fortress, i);
        bare += run(SystemClass::S1Pb, i);
    }
    let (fortified, bare) = (fortified / trials as f64, bare / trials as f64);
    assert!(
        fortified >= bare - 0.02,
        "fortified goodput ({fortified:.4}) must not fall below bare PB's \
         ({bare:.4}) under the paired fault schedule"
    );
    assert!(
        bare < 0.95,
        "10% per-link loss must visibly degrade the retry-free baseline: {bare:.4}"
    );
}
