//! The campaign grid's contracts, asserted end-to-end:
//!
//! 1. **Golden pin** — one small grid's per-cell means are bit-exact
//!    against a committed golden CSV (counter-based seeding makes the
//!    whole grid a pure function of its parameters), and identical at 1
//!    vs 4 runner threads. Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p fortress-sim --test campaign`.
//! 2. **Ordering invariance** — reordering or subsetting the grid's
//!    strategy axis changes no cell's result (cell seeds derive from
//!    cell content, not grid position).
//! 3. **Fleet direction** — under the scan-then-strike adversary, wider
//!    proxy fleets never reduce the mean lifetime: one proxy *is* the
//!    all-proxies compromise condition, while any second proxy forces
//!    the attacker through the launch-pad strike phase.

mod common;

use common::{small_grid, GOLDEN_PATH, GOLDEN_SEED};
use fortress_attack::campaign::StrategyKind;
use fortress_core::probelog::SuspicionPolicy;
use fortress_core::system::SystemClass;
use fortress_model::params::Policy;
use fortress_sim::campaign_mc::CampaignGrid;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::{Runner, TrialBudget};

/// Contract 1: the committed golden file reproduces bit-for-bit, at more
/// than one thread count.
#[test]
fn small_grid_matches_golden_file() {
    let grid = small_grid();
    let budget = TrialBudget::Fixed(16);
    let serial = grid.run(&Runner::with_threads(1), budget, GOLDEN_SEED);
    let pooled = grid.run(&Runner::with_threads(4), budget, GOLDEN_SEED);
    let csv = serial.to_table().to_csv();
    assert_eq!(
        pooled.to_table().to_csv(),
        csv,
        "campaign grid diverged across thread counts"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &csv).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "campaign means drifted from the golden pin; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// Contract 2: per-cell results are independent of the grid layout.
#[test]
fn strategy_ordering_does_not_change_cell_results() {
    let forward = small_grid();
    let mut reversed = small_grid();
    reversed.strategies.reverse();
    reversed.fleet_sizes.reverse();
    reversed.suspicions.reverse();
    let budget = TrialBudget::Fixed(12);
    let runner = Runner::with_threads(2);
    let a = forward.run(&runner, budget, 5);
    let b = reversed.run(&runner, budget, 5);
    assert_eq!(a.cells.len(), b.cells.len());
    for outcome in &a.cells {
        let mirrored = b
            .find(&outcome.cell)
            .expect("reversed grid covers the same cells");
        assert_eq!(
            outcome.estimate, mirrored.estimate,
            "cell {:?} changed when the grid was reordered",
            outcome.cell
        );
    }

    // Subsetting must not change results either: a single-strategy grid
    // reproduces the full grid's cells for that strategy.
    let mut subset = small_grid();
    subset.strategies = vec![StrategyKind::ScanThenStrike];
    let c = subset.run(&runner, budget, 5);
    for outcome in &c.cells {
        let full = a.find(&outcome.cell).expect("full grid has the cell");
        assert_eq!(outcome.estimate, full.estimate);
    }
}

/// Contract 3: under scan-then-strike, growing the proxy fleet never
/// reduces the mean lifetime. The jump from 1 proxy (where capturing the
/// pad *is* the all-proxies condition) to 2+ is strict; beyond that the
/// lifetime is flat in theory, so adjacent cells are allowed Monte-Carlo
/// noise but no real regression.
#[test]
fn wider_fleets_never_reduce_lifetime_under_scan_then_strike() {
    let grid = CampaignGrid {
        suspicions: vec![SuspicionPolicy { window: 16, threshold: 3 }],
        fleet_sizes: vec![1, 2, 4, 6],
        strategies: vec![StrategyKind::ScanThenStrike],
        base: ProtocolExperiment {
            entropy_bits: 7,
            omega: 8.0,
            max_steps: 2_000,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        },
    };
    let budget = TrialBudget::TargetRse {
        target: 0.02,
        min_trials: 256,
        max_trials: 4_096,
        batch: 256,
    };
    let report = grid.run(&Runner::new(), budget, 0xF1EE7);
    let means: Vec<f64> = report.cells.iter().map(|o| o.estimate.mean).collect();
    for pair in means.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.95,
            "mean lifetime dropped with a wider fleet: {means:?}"
        );
    }
    assert!(
        means[1] > means[0] * 1.5,
        "the 1→2 proxy jump must be structural, not noise: {means:?}"
    );
}

/// The suspicion axis bites: a hair-trigger policy (low threshold, long
/// window) squeezes the paced attacker's κ and must not *shorten* the
/// defender's life compared to a lax policy, everything else equal.
#[test]
fn tighter_suspicion_never_helps_the_paced_attacker() {
    let grid = CampaignGrid {
        suspicions: vec![
            SuspicionPolicy { window: 8, threshold: 7 }, // lax: κ = 0.09
            SuspicionPolicy::hair_trigger(),             // tight: κ ≈ 0.002
        ],
        fleet_sizes: vec![3],
        strategies: vec![StrategyKind::PacedBelowThreshold],
        base: ProtocolExperiment {
            entropy_bits: 7,
            omega: 8.0,
            max_steps: 2_000,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        },
    };
    let budget = TrialBudget::TargetRse {
        target: 0.03,
        min_trials: 200,
        max_trials: 2_048,
        batch: 200,
    };
    let report = grid.run(&Runner::new(), budget, 0xBEE);
    let lax = report.cells[0].estimate.mean;
    let tight = report.cells[1].estimate.mean;
    assert!(
        tight >= lax * 0.95,
        "tight suspicion ({tight}) must not underperform lax ({lax})"
    );
    assert!(report.cells[1].kappa < report.cells[0].kappa);
}
