//! The availability axis, asserted end-to-end:
//!
//! 1. **Golden pin** — the outage-bearing availability sweep (3 outage
//!    schedules × paced/outage-strike on fortified S2, plus the bare-PB
//!    S1 slice) reproduces a committed golden CSV bit-for-bit through
//!    the cell-parallel scheduler, at 1 and 8 runner threads.
//!    Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p fortress-sim --test availability`.
//! 2. **Directionality** — availability degrades monotonically with the
//!    outage rate at fixed adversary strength, and the fortified
//!    stack's downtime fraction does not exceed bare PB's on paired
//!    seeds and schedules (the paper's headline claim, availability
//!    edition).
//! 3. **Mechanism** — outage cells actually exercise the PB failover
//!    machinery: failovers complete, latencies are bounded by the
//!    failover timeout's order, and requests are lost only in outage
//!    windows.

use fortress_core::system::{pb_failover_timeout, SystemClass};
use fortress_sim::outage::OutageSpec;
use fortress_sim::runner::{Runner, TrialBudget};
use fortress_sim::scenario::{availability_base, availability_sweep, SweepScheduler, SweepSpec};

/// Seed of the pinned availability sweep.
const GOLDEN_SEED: u64 = 0x000A_7A11;

/// Path of the committed golden CSV.
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/availability_small.csv"
);

/// Contract 1: the outage-bearing sweep is bit-identical serial vs
/// cell-parallel and pinned by a committed golden file.
#[test]
fn availability_sweep_matches_golden_file_at_any_thread_count() {
    let cells = availability_sweep(GOLDEN_SEED);
    assert!(
        cells.iter().any(|c| c.label.contains("out=periodic"))
            && cells.iter().any(|c| c.label.contains("out=poisson")),
        "the sweep must carry at least two outage schedules: {:?}",
        cells.iter().map(|c| c.label.clone()).collect::<Vec<_>>()
    );
    let budget = TrialBudget::Fixed(16);
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    assert_eq!(
        serial.to_json(),
        pooled.to_json(),
        "availability sweep diverged between 1 and 8 threads"
    );
    let csv = serial.to_table().to_csv();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &csv).unwrap();
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        csv, golden,
        "availability sweep drifted from the golden pin; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

/// A small fortified cell list over a swept outage axis, shared by the
/// directional tests.
fn s2_cells_with_outages(outages: Vec<OutageSpec>, base_seed: u64) -> Vec<fortress_sim::SweepCell> {
    // The one shared template (wide key space, slow attacker) so trials
    // survive several outage periods and these tests stay on the same
    // configuration the golden sweep and the example pin.
    SweepSpec::new(availability_base(SystemClass::S2Fortress))
        .outages(outages)
        .compile(base_seed)
}

/// Contract 2a: at fixed adversary strength, more injected outage means
/// more downtime — monotone along the rate axis (small tolerance for
/// Monte-Carlo noise; the axis spans a 10× rate spread so the signal
/// dwarfs it).
#[test]
fn downtime_grows_monotonically_with_outage_rate() {
    let rates = [0.0, 0.02, 0.2];
    let cells = s2_cells_with_outages(
        rates
            .iter()
            .map(|&rate| OutageSpec::Random {
                rate,
                downtime: 25,
            })
            .collect(),
        0xD0_71,
    );
    let report = SweepScheduler::new(&Runner::new(), TrialBudget::Fixed(48)).run(&cells);
    let downtimes: Vec<f64> = report
        .cells
        .iter()
        .map(|o| {
            assert!(o.avail.downtime.n() > 0, "protocol cells must measure");
            o.avail.downtime.mean()
        })
        .collect();
    for pair in downtimes.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.98,
            "downtime dropped as the outage rate grew: {downtimes:?}"
        );
    }
    assert!(
        downtimes[2] > downtimes[0] + 0.05,
        "a 0.2/step outage rate must cost real availability: {downtimes:?}"
    );
}

/// Contract 2b: under the same outage schedule, adversary strength and
/// paired base seed, the fortified stack's downtime fraction does not
/// exceed the bare PB system's — the paper's resilience headline read
/// on the availability axis (bare PB falls to the direct attacker long
/// before the mission window closes, and a fallen system delivers no
/// service at all).
#[test]
fn fortified_downtime_never_exceeds_bare_pb_on_paired_schedules() {
    let outage = OutageSpec::Periodic {
        period: 40,
        downtime: 25,
    };
    let base_seed = 0x9A12;
    let s2 = s2_cells_with_outages(vec![outage], base_seed);
    let s1 = SweepSpec::new(availability_base(SystemClass::S1Pb))
        .outages(vec![outage])
        .compile(base_seed);
    let runner = Runner::new();
    let budget = TrialBudget::Fixed(48);
    let s2_report = SweepScheduler::new(&runner, budget).run(&s2);
    let s1_report = SweepScheduler::new(&runner, budget).run(&s1);
    let s2_down = s2_report.cells[0].avail.downtime.mean();
    let s1_down = s1_report.cells[0].avail.downtime.mean();
    assert!(
        s2_down <= s1_down + 0.02,
        "fortified downtime ({s2_down:.4}) must not exceed bare PB's \
         ({s1_down:.4}) under the paired schedule"
    );
    assert!(
        s1_down > 0.5,
        "bare PB under direct attack must lose most of the window: {s1_down:.4}"
    );
}

/// Contract 3: outage cells exercise the real failover machinery — the
/// counters the campaign reports surface are mechanically plausible.
#[test]
fn outage_cells_complete_failovers_with_bounded_latency() {
    let cells = s2_cells_with_outages(
        vec![OutageSpec::Periodic {
            period: 40,
            downtime: 25,
        }],
        0xFA_17,
    );
    let report = SweepScheduler::new(&Runner::new(), TrialBudget::Fixed(48)).run(&cells);
    let outcome = &report.cells[0];
    assert!(
        outcome.avail.failovers.mean() > 0.0,
        "periodic primary outages must provoke failovers"
    );
    assert!(
        outcome.avail.failover_latency.n() > 0,
        "some trials must complete a failover window"
    );
    let latency = outcome.avail.failover_latency.mean();
    let timeout = pb_failover_timeout() as f64;
    assert!(
        latency > 0.0 && latency <= 3.0 * timeout,
        "mean failover latency {latency:.1} should be on the order of the \
         failover timeout ({timeout})"
    );
    assert!(
        outcome.avail.lost.mean() > 0.0,
        "requests sent into a downed machine must be counted as lost"
    );
    // The no-outage twin loses nothing and fails over never.
    let quiet = s2_cells_with_outages(vec![OutageSpec::None], 0xFA_17);
    let quiet_report =
        SweepScheduler::new(&Runner::new(), TrialBudget::Fixed(24)).run(&quiet);
    assert_eq!(quiet_report.cells[0].avail.failovers.mean(), 0.0);
    assert_eq!(quiet_report.cells[0].avail.lost.mean(), 0.0);
}
