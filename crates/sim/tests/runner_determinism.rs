//! The parallel runner's contract, asserted end-to-end:
//!
//! 1. same seed ⇒ bit-identical statistics at 1, 2 and 8 worker threads,
//!    for both the event-driven sampler and the protocol-level stacks;
//! 2. [`RunningStats::merge`] is equivalent to sequential accumulation
//!    and associative (up to floating-point round-off) for arbitrary
//!    splits of arbitrary data;
//! 3. the event-driven and step-by-step engines agree in distribution
//!    when both run through the runner;
//! 4. on machines with enough cores, the parallel path beats the serial
//!    path on the Figure 1 workload.

use fortress_markov::LaunchPad;
use fortress_model::lifetime::expected_lifetime;
use fortress_model::params::{AttackParams, Policy, ProbeModel};
use fortress_model::SystemKind;
use fortress_sim::abstract_mc::AbstractModel;
use fortress_sim::event_mc::sample_lifetime;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::runner::{trial_seed, Runner, TrialBudget};
use fortress_sim::stats::RunningStats;
use proptest::prelude::*;

fn event_stats(threads: usize, trials: u64, seed: u64) -> RunningStats {
    let params = AttackParams::from_alpha(65536.0, 1e-3).unwrap();
    Runner::with_threads(threads).run(seed, TrialBudget::Fixed(trials), move |_, rng| {
        sample_lifetime(
            SystemKind::S2Fortress { kappa: 0.5 },
            Policy::StartupOnly,
            &params,
            LaunchPad::NextStep,
            rng,
        ) as f64
    })
}

/// Contract 1, event-driven engine: bit-identical across thread counts.
#[test]
fn event_driven_identical_across_1_2_8_threads() {
    let reference = event_stats(1, 20_000, 0xDEADBEEF);
    for threads in [2, 8] {
        assert_eq!(
            event_stats(threads, 20_000, 0xDEADBEEF),
            reference,
            "{threads}-thread run diverged from the serial reference"
        );
    }
    // And a different seed gives a different (still deterministic) result.
    assert_ne!(event_stats(4, 20_000, 0xBEEF), reference);
}

/// Contract 1, protocol engine: the full stack + attacker pipeline is
/// seeded per trial, so estimates are thread-count invariant too.
#[test]
fn protocol_estimates_identical_across_thread_counts() {
    use fortress_core::system::SystemClass;
    let exp = ProtocolExperiment {
        entropy_bits: 7,
        omega: 8.0,
        max_steps: 2_000,
        ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
    };
    let reference = exp.estimate_with(&Runner::with_threads(1), TrialBudget::Fixed(48), 77);
    for threads in [2, 8] {
        let est = exp.estimate_with(&Runner::with_threads(threads), TrialBudget::Fixed(48), 77);
        assert_eq!(est, reference, "{threads}-thread protocol run diverged");
    }
}

/// Per-trial seeds depend only on (base_seed, index) — the foundation of
/// contract 1 — and are collision-free over realistic budgets.
#[test]
fn trial_seeds_are_stable_and_unique() {
    assert_eq!(trial_seed(42, 0), trial_seed(42, 0));
    let mut seen = std::collections::HashSet::new();
    for index in 0..100_000u64 {
        assert!(seen.insert(trial_seed(42, index)), "collision at {index}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 2: merging any two-way split of a data set equals pushing
    /// it sequentially, and any parenthesization of a three-way split
    /// agrees with any other (within round-off).
    #[test]
    fn merge_is_split_invariant_and_associative(
        data in proptest::collection::vec(0.0f64..1e6, 3..200),
        cut_a in any::<prop::sample::Index>(),
        cut_b in any::<prop::sample::Index>(),
    ) {
        let mut whole = RunningStats::new();
        for x in &data {
            whole.push(*x);
        }

        // Two-way split equivalence.
        let cut = cut_a.index(data.len());
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for x in &data[..cut] { left.push(*x); }
        for x in &data[cut..] { right.push(*x); }
        left.merge(&right);
        prop_assert_eq!(left.n(), whole.n());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((left.variance() - whole.variance()).abs()
            <= 1e-6 * whole.variance().abs().max(1.0));
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());

        // Three-way associativity: (a ∪ b) ∪ c vs a ∪ (b ∪ c).
        let mut cuts = [cut, cut_b.index(data.len())];
        cuts.sort_unstable();
        let (i, j) = (cuts[0], cuts[1]);
        let piece = |range: std::ops::Range<usize>| {
            let mut s = RunningStats::new();
            for x in &data[range] { s.push(*x); }
            s
        };
        let (a, b, c) = (piece(0..i), piece(i..j), piece(j..data.len()));
        let mut left_assoc = a;
        left_assoc.merge(&b);
        left_assoc.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right_assoc = a;
        right_assoc.merge(&bc);
        prop_assert_eq!(left_assoc.n(), right_assoc.n());
        prop_assert!((left_assoc.mean() - right_assoc.mean()).abs()
            <= 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((left_assoc.variance() - right_assoc.variance()).abs()
            <= 1e-6 * whole.variance().abs().max(1.0));
    }

    /// Merging an empty accumulator in either direction is the identity.
    #[test]
    fn merge_with_empty_is_identity(data in proptest::collection::vec(0.0f64..100.0, 1..50)) {
        let mut filled = RunningStats::new();
        for x in &data {
            filled.push(*x);
        }
        let mut left = filled;
        left.merge(&RunningStats::new());
        prop_assert_eq!(left, filled);
        let mut right = RunningStats::new();
        right.merge(&filled);
        prop_assert_eq!(right, filled);
    }
}

/// Contract 3: the O(1) event-driven sampler and the O(steps) abstract
/// model agree in distribution (mean and spread) when both are fanned
/// out through the runner at the same parameters.
#[test]
fn event_driven_matches_step_by_step_through_runner() {
    let params = AttackParams::from_alpha(4096.0, 0.01).unwrap();
    let cases = [
        (SystemKind::S1Pb, Policy::StartupOnly),
        (SystemKind::S1Pb, Policy::Proactive),
        (SystemKind::S0Smr, Policy::StartupOnly),
        (SystemKind::S2Fortress { kappa: 0.4 }, Policy::StartupOnly),
    ];
    let runner = Runner::new();
    for (seed, (kind, policy)) in cases.into_iter().enumerate() {
        let seed = seed as u64;
        let event = runner.run(seed, TrialBudget::Fixed(6_000), move |_, rng| {
            sample_lifetime(kind, policy, &params, LaunchPad::NextStep, rng) as f64
        });
        let step_model = AbstractModel::new(kind, policy, params);
        let step = step_model.estimate_with(&runner, TrialBudget::Fixed(6_000), seed + 100);
        let event_est = event.estimate();
        let rel = (event_est.mean - step.mean).abs() / step.mean;
        assert!(
            rel < 0.06,
            "{kind:?}/{policy:?}: event {} vs step {} (rel {rel:.3})",
            event_est.mean,
            step.mean
        );
        // Spread agreement too — same distribution, not just same mean.
        let ratio = event.std_dev() / runner
            .run(seed + 200, TrialBudget::Fixed(6_000), move |_, rng| {
                step_model.simulate_once(rng) as f64
            })
            .std_dev();
        assert!(
            (0.85..1.18).contains(&ratio),
            "{kind:?}/{policy:?}: std-dev ratio {ratio:.3}"
        );
    }
}

/// Contract 3 corollary: the adaptive budget reaches its target where
/// the fixed reference needs far more trials, and both land on the
/// analytic value.
#[test]
fn adaptive_budget_tracks_analytic_lifetime() {
    let params = AttackParams::from_alpha(65536.0, 1e-4).unwrap();
    let analytic = expected_lifetime(
        SystemKind::S1Pb,
        Policy::Proactive,
        ProbeModel::Broadcast,
        &params,
    )
    .unwrap();
    let stats = Runner::new().run(
        5,
        TrialBudget::TargetRse {
            target: 0.01,
            min_trials: 2_000,
            max_trials: 400_000,
            batch: 2_000,
        },
        move |_, rng| {
            sample_lifetime(SystemKind::S1Pb, Policy::Proactive, &params, LaunchPad::NextStep, rng)
                as f64
        },
    );
    assert!(stats.relative_std_error() <= 0.01 || stats.n() == 400_000);
    let rel = (stats.mean() - analytic).abs() / analytic;
    assert!(rel < 0.04, "MC {} vs analytic {analytic} (rel {rel:.3})", stats.mean());
}

/// Contract 1, worker-pool refactor: the persistent pool behind
/// [`Runner::run`] must return the same bits as the pre-pool
/// scoped-spawn-per-call execution ([`Runner::run_scoped`]) for the
/// event-driven workload, under both fixed and adaptive budgets.
#[test]
fn pooled_runner_matches_scoped_reference_bit_for_bit() {
    let params = AttackParams::from_alpha(65536.0, 1e-3).unwrap();
    let trial = move |_: u64, rng: &mut rand::rngs::SmallRng| {
        sample_lifetime(
            SystemKind::S2Fortress { kappa: 0.5 },
            Policy::StartupOnly,
            &params,
            LaunchPad::NextStep,
            rng,
        ) as f64
    };
    let runner = Runner::with_threads(4);
    for budget in [
        TrialBudget::Fixed(30_000),
        TrialBudget::TargetRse {
            target: 0.02,
            min_trials: 4_000,
            max_trials: 60_000,
            batch: 4_000,
        },
    ] {
        let pooled = runner.run(0xCAFE, budget, trial);
        let scoped = runner.run_scoped(0xCAFE, budget, trial);
        assert_eq!(pooled, scoped, "pool diverged from scoped spawn under {budget:?}");
    }
}

/// Contract 1, worker-pool refactor at the consumer level: the
/// `figure1_with` / `mc_mean` paths in the bench crate and the protocol
/// estimates all go through the pooled `run`; the pooled protocol
/// estimate must match a scoped-execution replay of the same per-trial
/// seeding, bit for bit.
#[test]
fn pooled_protocol_estimate_matches_scoped_replay() {
    use fortress_core::system::SystemClass;
    let exp = ProtocolExperiment {
        entropy_bits: 7,
        omega: 8.0,
        max_steps: 2_000,
        ..ProtocolExperiment::new(SystemClass::S1Pb, Policy::StartupOnly)
    };
    let runner = Runner::with_threads(4);
    let pooled = exp.estimate_with(&runner, TrialBudget::Fixed(48), 91);
    let scoped = runner
        .run_scoped(91, TrialBudget::Fixed(48), |trial_index, _rng| {
            exp.run_once(trial_seed(91, trial_index)) as f64
        })
        .estimate();
    assert_eq!(pooled, scoped, "pooled protocol estimate diverged from scoped replay");
}

/// Contract 4: the parallel Figure 1 regeneration must beat the serial
/// path — ≥ 4× on machines with ≥ 8 cores, and ≥ 45% parallel
/// efficiency on 4–7 cores (a flat 4× bar at exactly 4 cores would
/// demand perfect scaling, which SMT-limited CI runners can't promise).
/// Skipped below 4 cores — the determinism contracts above still pin
/// the semantics there.
#[test]
fn parallel_runner_beats_serial_on_figure1_workload() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} core(s) available");
        return;
    }
    let required = if cores >= 8 { 4.0 } else { 0.45 * cores as f64 };
    let params = AttackParams::from_alpha(65536.0, 1e-3).unwrap();
    let workload = |runner: &Runner| {
        runner.run(9, TrialBudget::Fixed(2_000_000), move |_, rng| {
            sample_lifetime(
                SystemKind::S2Fortress { kappa: 0.5 },
                Policy::StartupOnly,
                &params,
                LaunchPad::NextStep,
                rng,
            ) as f64
        })
    };
    let serial_runner = Runner::with_threads(1);
    let parallel_runner = Runner::new();
    // Warm both paths once, then time.
    let start = std::time::Instant::now();
    let serial = workload(&serial_runner);
    let serial_elapsed = start.elapsed();
    let start = std::time::Instant::now();
    let parallel = workload(&parallel_runner);
    let parallel_elapsed = start.elapsed();
    assert_eq!(serial, parallel, "speedup must not change results");
    let speedup = serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64();
    assert!(
        speedup >= required,
        "expected ≥ {required:.2}× speedup on {cores} cores, got {speedup:.2}× \
         (serial {serial_elapsed:?}, parallel {parallel_elapsed:?})"
    );
}
