//! Steal-split determinism, pinned against the committed goldens.
//!
//! The worker pool's steal board lets an idle worker split a straggler
//! batch's remaining trial range at a chunk boundary; forced-steal mode
//! ([`Runner::with_forced_steal`]) routes *every* chunk through that
//! path, making it the most adversarial schedule the pool can produce.
//! These tests assert the invariant the feature is built on: stealing
//! changes who executes a chunk, never its bits — the forced-steal
//! reports reproduce the committed `fault_small.csv` and
//! `campaign_small.csv` goldens byte-for-byte, and the steal counter
//! proves the path actually ran.

mod common;

use common::{small_grid, GOLDEN_PATH as CAMPAIGN_GOLDEN, GOLDEN_SEED as CAMPAIGN_SEED};
use fortress_sim::runner::{Runner, TrialBudget};
use fortress_sim::scenario::{fault_sweep, SweepScheduler};

/// Seed of the pinned fault sweep (`tests/faults.rs`).
const FAULT_SEED: u64 = 0x000F_A017;

/// Path of the committed fault-sweep golden CSV.
const FAULT_GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fault_small.csv");

#[test]
fn forced_steals_reproduce_the_fault_golden_byte_for_byte() {
    let runner = Runner::with_threads(8).with_forced_steal(true);
    let report =
        SweepScheduler::new(&runner, TrialBudget::Fixed(16)).run(&fault_sweep(FAULT_SEED));
    let golden = std::fs::read_to_string(FAULT_GOLDEN)
        .expect("fault golden missing — regenerate via tests/faults.rs with UPDATE_GOLDEN=1");
    assert_eq!(
        report.to_table().to_csv(),
        golden,
        "a forced-steal schedule drifted from the fault golden"
    );
    assert!(
        runner.steals() > 0,
        "forced-steal mode must execute chunks via the steal path"
    );
}

#[test]
fn forced_steals_reproduce_the_campaign_golden_byte_for_byte() {
    let runner = Runner::with_threads(8).with_forced_steal(true);
    let report = small_grid().run(&runner, TrialBudget::Fixed(16), CAMPAIGN_SEED);
    let golden = std::fs::read_to_string(CAMPAIGN_GOLDEN)
        .expect("campaign golden missing — regenerate via the campaign suite");
    assert_eq!(
        report.to_table().to_csv(),
        golden,
        "a forced-steal schedule drifted from the campaign golden"
    );
    assert!(
        runner.steals() > 0,
        "forced-steal mode must execute chunks via the steal path"
    );
}

#[test]
fn forced_steals_match_normal_pooled_execution_under_an_adaptive_budget() {
    // Adaptive budgets make the trial schedule depend on merged stats;
    // stealing must not perturb those either. Three-way: serial vs
    // pooled vs forced-steal.
    let budget = TrialBudget::TargetRse {
        target: 0.05,
        min_trials: 16,
        max_trials: 128,
        batch: 16,
    };
    let cells = fault_sweep(FAULT_SEED);
    let serial = SweepScheduler::new(&Runner::with_threads(1), budget).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), budget).run(&cells);
    let forced = SweepScheduler::new(&Runner::with_threads(8).with_forced_steal(true), budget)
        .run(&cells);
    assert_eq!(serial.to_json(), pooled.to_json(), "pooled diverged from serial");
    assert_eq!(serial.to_json(), forced.to_json(), "forced-steal diverged from serial");
}
