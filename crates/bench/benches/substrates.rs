//! Substrate micro-benchmarks: the from-scratch crypto and the absorbing
//! Markov chain solver — the two compute kernels everything else leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fortress_crypto::hmac::HmacSha256;
use fortress_crypto::sha256::Sha256;
use fortress_crypto::sig::Signer;
use fortress_crypto::KeyAuthority;
use fortress_markov::chain::AbsorbingChain;
use fortress_markov::Matrix;

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| Sha256::digest(data))
        });
        group.bench_with_input(BenchmarkId::new("hmac", size), &data, |b, data| {
            b.iter(|| HmacSha256::mac(b"key", data))
        });
    }

    let authority = KeyAuthority::with_seed(1);
    let signer = Signer::register("bench-signer", &authority);
    group.bench_function("sign_and_verify", |b| {
        b.iter(|| {
            let sig = signer.sign(b"response body of modest size");
            assert!(authority.verify("bench-signer", b"response body of modest size", &sig));
        })
    });
    group.finish();
}

fn bench_markov(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov");

    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("solve_birth_death", n), &n, |b, &n| {
            // A birth-death chain with one absorbing end.
            let mut builder = AbsorbingChain::builder().absorbing("dead");
            for i in 0..n {
                builder = builder.transient(&format!("s{i}"));
            }
            for i in 0..n {
                let here = format!("s{i}");
                if i + 1 < n {
                    builder = builder
                        .transition(&here, &format!("s{}", i + 1), 0.4)
                        .transition(&here, &here, 0.5)
                        .transition(&here, "dead", 0.1);
                } else {
                    builder = builder
                        .transition(&here, &here, 0.9)
                        .transition(&here, "dead", 0.1);
                }
            }
            let chain = builder.build().unwrap();
            b.iter(|| chain.expected_steps().unwrap())
        });
    }

    group.bench_function("matrix_inverse_64", |b| {
        let n = 64;
        let mut m = Matrix::identity(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, 1.0 / (1.0 + (i + j) as f64) / n as f64);
                }
            }
        }
        b.iter(|| m.inverse().unwrap())
    });

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_crypto, bench_markov
}
criterion_main!(benches);
