//! FIG1 — regenerates Figure 1 (expected lifetime comparison).
//!
//! Benchmarks both halves of the pipeline: the analytic sweep over the α
//! grid, and the event-driven Monte-Carlo estimator at the extreme ends
//! of the grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortress_bench::figure1_with;
use fortress_markov::LaunchPad;
use fortress_model::lifetime::figure1_systems;
use fortress_model::params::AttackParams;
use fortress_sim::event_mc::sample_lifetime;
use fortress_sim::runner::{Runner, TrialBudget};

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");

    group.bench_function("analytic_grid", |b| {
        b.iter(|| {
            let systems = figure1_systems(0.5);
            let mut acc = 0.0;
            for alpha in fortress_model::params::paper_alpha_grid(4) {
                let params = AttackParams::from_alpha(65536.0, alpha).unwrap();
                for s in &systems {
                    acc += s.expected_lifetime(&params).unwrap();
                }
            }
            acc
        })
    });

    for alpha in [1e-5, 1e-3, 1e-2] {
        group.bench_with_input(
            BenchmarkId::new("event_mc_10k_trials", format!("alpha_{alpha:e}")),
            &alpha,
            |b, &alpha| {
                let params = AttackParams::from_alpha(65536.0, alpha).unwrap();
                let systems = figure1_systems(0.5);
                let runner = Runner::new();
                b.iter(|| {
                    let mut acc = 0.0;
                    for s in &systems {
                        let (kind, policy) = (s.kind, s.policy);
                        acc += runner
                            .run(7, TrialBudget::Fixed(2_000), move |_, rng| {
                                sample_lifetime(
                                    kind,
                                    policy,
                                    &params,
                                    LaunchPad::NextStep,
                                    rng,
                                ) as f64
                            })
                            .mean();
                    }
                    acc
                })
            },
        );
    }

    // The tentpole comparison: the same small figure-1 table generated
    // serially (1 worker) and with all cores — the wall-clock ratio is
    // the runner's speedup on this machine. On a 1-core box only the
    // serial variant registers (duplicate benchmark IDs are an error
    // under the real criterion crate).
    let mut thread_counts = vec![1usize];
    if Runner::new().threads() > 1 {
        thread_counts.push(Runner::new().threads());
    }
    for threads in thread_counts {
        group.bench_with_input(
            BenchmarkId::new("full_table_small", format!("threads_{threads}")),
            &threads,
            |b, &threads| {
                let runner = Runner::with_threads(threads);
                b.iter(|| figure1_with(&runner, 1, 0.5, TrialBudget::Fixed(200)))
            },
        );
    }

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fig1
}
criterion_main!(benches);
