//! ABL-PROBE / ABL-P / ABL-NP / ABL-ENT — the ablation sweeps from
//! DESIGN.md §4: probe-model flip, generalized re-randomization period
//! (Markov chains), proxy-fleet sizing and key-entropy scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortress_bench::{ablation_entropy, ablation_fleet, ablation_period, ablation_probe_model};
use fortress_markov::{LaunchPad, PeriodChainSpec, SystemKind};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");

    group.bench_function("probe_model_flip", |b| {
        b.iter(|| ablation_probe_model(2))
    });

    for period in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("period_chain_solve", period),
            &period,
            |b, &period| {
                b.iter(|| {
                    PeriodChainSpec {
                        kind: SystemKind::S2Fortress { kappa: 0.5 },
                        alpha: 1e-2,
                        period,
                        launch_pad: LaunchPad::NextStep,
                    }
                    .expected_lifetime()
                    .unwrap()
                })
            },
        );
    }

    group.bench_function("period_table", |b| {
        b.iter(|| ablation_period(1e-2, &[1, 2, 4, 8, 16]))
    });

    group.bench_function("fleet_table", |b| {
        b.iter(|| ablation_fleet(1e-3, 0.1, &[1, 2, 3, 4, 5, 6]))
    });

    group.bench_function("entropy_table", |b| {
        b.iter(|| ablation_entropy(64.0, &[12, 14, 16, 20, 24]))
    });

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ablations
}
criterion_main!(benches);
