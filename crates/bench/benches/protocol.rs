//! PROTO / OVH — protocol-level benchmarks: lifetime trials on the real
//! stacks, and the request-path overhead of the proxy tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortress_bench::proxy_overhead;
use fortress_core::client::{AcceptMode, DirectClient};
use fortress_core::system::{Stack, StackConfig, SystemClass};
use fortress_model::params::Policy;
use fortress_core::wire::WireMsg;
use fortress_sim::protocol_mc::ProtocolExperiment;

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol");
    group.sample_size(10);

    for (label, class) in [
        ("S1Pb", SystemClass::S1Pb),
        ("S0Smr", SystemClass::S0Smr),
    ] {
        group.bench_with_input(
            BenchmarkId::new("so_lifetime_trial", label),
            &class,
            |b, &class| {
                let exp = ProtocolExperiment {
                    entropy_bits: 8,
                    omega: 8.0,
                    ..ProtocolExperiment::new(class, Policy::StartupOnly)
                };
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    exp.run_once(seed)
                })
            },
        );
    }

    group.bench_function("s2_so_lifetime_trial", |b| {
        let exp = ProtocolExperiment {
            entropy_bits: 7,
            omega: 8.0,
            max_steps: 4000,
            ..ProtocolExperiment::new(SystemClass::S2Fortress, Policy::StartupOnly)
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            exp.run_once(seed)
        })
    });

    group.bench_function("request_round_trip_s1", |b| {
        let mut stack = Stack::new(StackConfig {
            class: SystemClass::S1Pb,
            seed: 1,
            ..StackConfig::default()
        })
        .unwrap();
        stack.add_client("bench");
        let mut client = DirectClient::new(
            "bench",
            stack.authority(),
            stack.ns().servers().to_vec(),
            AcceptMode::AnyAuthentic,
        );
        b.iter(|| {
            let req = client.request(b"PUT k v");
            stack.submit("bench", &req);
            stack.pump();
            let mut got = None;
            for ev in stack.drain_client("bench") {
                if let Some(payload) = ev.payload() {
                    if let WireMsg::SignedReply(reply) = WireMsg::decode(payload) {
                        if let Some(r) = client.on_reply(&reply.to_owned()) {
                            got = Some(r);
                        }
                    }
                }
            }
            got.expect("request must be answered")
        })
    });

    group.bench_function("overhead_table", |b| b.iter(|| proxy_overhead(20)));

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_protocol
}
criterion_main!(benches);
