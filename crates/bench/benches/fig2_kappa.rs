//! FIG2 — regenerates Figure 2 (S2PO lifetimes as κ varies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fortress_bench::figure2;
use fortress_model::params::{AttackParams, Policy, ProbeModel};
use fortress_model::{expected_lifetime, SystemKind};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");

    group.bench_function("full_table", |b| b.iter(|| figure2(4, 0)));

    for kappa in [0.0, 0.5, 1.0] {
        group.bench_with_input(
            BenchmarkId::new("kappa_column", format!("{kappa:.1}")),
            &kappa,
            |b, &kappa| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for alpha in fortress_model::params::paper_alpha_grid(4) {
                        let params = AttackParams::from_alpha(65536.0, alpha).unwrap();
                        acc += expected_lifetime(
                            SystemKind::S2Fortress { kappa },
                            Policy::Proactive,
                            ProbeModel::Broadcast,
                            &params,
                        )
                        .unwrap();
                    }
                    acc
                })
            },
        );
    }

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_fig2
}
criterion_main!(benches);
