//! ORD — verifies the §6 summary ordering over the full grid.

use criterion::{criterion_group, criterion_main, Criterion};
use fortress_bench::{ordering_summary, trends};
use fortress_model::ordering::verify_paper_ordering;
use fortress_model::params::{paper_alpha_grid, paper_kappa_grid};

fn bench_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering");

    group.bench_function("verify_full_grid", |b| {
        b.iter(|| {
            let reports =
                verify_paper_ordering(&paper_alpha_grid(5), &paper_kappa_grid(), 65536.0)
                    .unwrap();
            assert!(reports.iter().all(|r| r.holds()));
            reports.len()
        })
    });

    group.bench_function("summary_table", |b| b.iter(ordering_summary));
    group.bench_function("trends_table", |b| b.iter(|| trends(1e-3)));

    group.finish();
}


/// Short measurement windows: these benches exist to regenerate figures
/// and guard against regressions, not to resolve microsecond deltas.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_ordering
}
criterion_main!(benches);
