//! CI perf smoke: regenerates a fixed Figure 1 workload serially and in
//! parallel, then emits `BENCH_fig1.json` with wall-clock, trials/sec
//! and the measured speedup — the start of the perf trajectory tracked
//! across PRs.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin bench_smoke [out_path]
//! ```

use fortress_bench::figure1_with;
use fortress_sim::runner::{Runner, TrialBudget};
use std::time::Instant;

/// Grid cells × trials of the timed workload (ppd 2 ⇒ 7 α points, 5
/// systems, each analytic + MC column).
const POINTS_PER_DECADE: usize = 2;
const TRIALS_PER_CELL: u64 = 50_000;

fn time_figure1(runner: &Runner) -> (f64, u64) {
    let start = Instant::now();
    let table = figure1_with(
        runner,
        POINTS_PER_DECADE,
        0.5,
        TrialBudget::Fixed(TRIALS_PER_CELL),
    );
    let wall = start.elapsed().as_secs_f64();
    // 5 systems per row, TRIALS_PER_CELL each.
    let trials = table.len() as u64 * 5 * TRIALS_PER_CELL;
    (wall, trials)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig1.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up pass so page faults and lazy init don't pollute the serial
    // measurement.
    let _ = time_figure1(&Runner::with_threads(1).with_chunk(4096));

    let (serial_wall, trials) = time_figure1(&Runner::with_threads(1).with_chunk(4096));
    let (parallel_wall, _) = time_figure1(&Runner::new().with_chunk(4096));
    let speedup = serial_wall / parallel_wall;

    let json = format!(
        "{{\n  \"workload\": \"figure1 ppd={POINTS_PER_DECADE} kappa=0.5 trials_per_cell={TRIALS_PER_CELL}\",\n  \
           \"threads\": {cores},\n  \
           \"trials\": {trials},\n  \
           \"serial_wall_s\": {serial_wall:.4},\n  \
           \"parallel_wall_s\": {parallel_wall:.4},\n  \
           \"speedup\": {speedup:.3},\n  \
           \"serial_trials_per_sec\": {:.0},\n  \
           \"parallel_trials_per_sec\": {:.0}\n}}\n",
        trials as f64 / serial_wall,
        trials as f64 / parallel_wall,
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[written {out_path}]"),
        Err(e) => {
            eprintln!("[could not write {out_path}: {e}]");
            std::process::exit(1);
        }
    }
}
