//! CAMPAIGN — the protocol-level adversary campaign grid, plus the CI
//! smoke artifact `BENCH_campaign.json`.
//!
//! Runs the default 3 (suspicion) × 3 (fleet size) × 4 (strategy) grid
//! through the persistent-pool runner with an RSE-adaptive trial budget,
//! checks the determinism contract the hard way (the full report JSON
//! must be identical at 1 and 8 threads), and measures the worker pool's
//! speedup over the old scoped-spawn-per-call execution on a rapid-fire
//! small-batch workload — the regime the pool exists for.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin campaign [out_path]
//! ```
//!
//! The per-cell table goes to stdout; the JSON artifact (cells/sec, pool
//! speedup, determinism verdict) to `out_path` (default
//! `BENCH_campaign.json`).

use fortress_sim::campaign_mc::CampaignGrid;
use fortress_sim::runner::{Runner, TrialBudget};
use std::time::Instant;

/// Adaptive per-cell budget: protocol trials are ms-scale, so spend them
/// where the lifetime variance demands (burst cells are far noisier than
/// paced cells) and cap the grid's total cost.
const BUDGET: TrialBudget = TrialBudget::TargetRse {
    target: 0.05,
    min_trials: 64,
    max_trials: 512,
    batch: 64,
};

/// The pool-vs-spawn microbenchmark regime: many tiny batches, the shape
/// of an adaptive campaign cell's stopping checks.
const MICRO_CALLS: u64 = 400;
const MICRO_TRIALS_PER_CALL: u64 = 64;

fn micro_workload(runner: &Runner, scoped: bool) -> f64 {
    use rand::Rng;
    let start = Instant::now();
    let mut acc = 0.0;
    for call in 0..MICRO_CALLS {
        let stats = if scoped {
            runner.run_scoped(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        } else {
            runner.run(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        };
        acc += stats.mean();
    }
    assert!(acc.is_finite());
    start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let grid = CampaignGrid::paper_default();
    let n_cells = grid.cells().len();
    let base_seed = 0xF0_47;

    // Two passes double as the determinism check: the serial reference,
    // then a timed 8-worker pooled pass whose report must match it bit
    // for bit (1 vs 8 threads, per the runner contract).
    let serial = grid.run(&Runner::with_threads(1), BUDGET, base_seed);
    let start = Instant::now();
    let report = grid.run(&Runner::with_threads(8), BUDGET, base_seed);
    let wall = start.elapsed().as_secs_f64();
    let deterministic = report.to_json() == serial.to_json();
    assert!(
        deterministic,
        "campaign grid diverged between 1 and 8 threads — determinism contract broken"
    );
    let trials_total: u64 = report.cells.iter().map(|o| o.estimate.n).sum();
    let cells_per_sec = n_cells as f64 / wall;

    println!("{}", report.to_table().to_aligned());

    // Pool vs per-call scoped spawning, µs-scale batch regime. Pin four
    // workers (even on smaller machines): the comparison is the cost of
    // four scoped spawns per call vs four persistent workers, which is
    // about OS overhead, not core count. Warm both paths first.
    let micro_runner = Runner::with_threads(4).with_chunk(16);
    let _ = micro_workload(&micro_runner, false);
    let _ = micro_workload(&micro_runner, true);
    let pooled_wall = micro_workload(&micro_runner, false);
    let scoped_wall = micro_workload(&micro_runner, true);
    let pool_speedup = scoped_wall / pooled_wall;

    let json = format!(
        "{{\n  \"workload\": \"campaign grid {n_suspicion}x{n_fleet}x{n_strategy} \
         (suspicion x fleet x strategy), adaptive rse<=0.05, 64..512 trials/cell\",\n  \
         \"timed_pass_workers\": 8,\n  \
         \"machine_cores\": {cores},\n  \
         \"cells\": {n_cells},\n  \
         \"trials_total\": {trials_total},\n  \
         \"wall_s\": {wall:.4},\n  \
         \"cells_per_sec\": {cells_per_sec:.2},\n  \
         \"deterministic_1_vs_8_threads\": {deterministic},\n  \
         \"pool_microbench\": {{\n    \
           \"calls\": {MICRO_CALLS},\n    \
           \"trials_per_call\": {MICRO_TRIALS_PER_CALL},\n    \
           \"scoped_spawn_wall_s\": {scoped_wall:.4},\n    \
           \"pooled_wall_s\": {pooled_wall:.4},\n    \
           \"pool_speedup\": {pool_speedup:.3}\n  }}\n}}\n",
        n_suspicion = grid.suspicions.len(),
        n_fleet = grid.fleet_sizes.len(),
        n_strategy = grid.strategies.len(),
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[written {out_path}]"),
        Err(e) => {
            eprintln!("[could not write {out_path}: {e}]");
            std::process::exit(1);
        }
    }
}
