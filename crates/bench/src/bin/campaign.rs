//! CAMPAIGN — the protocol-level adversary scenario sweep, plus the CI
//! smoke artifact `BENCH_campaign.json`.
//!
//! Runs the default sweep (`scenario::paper_default_sweep`: the SO
//! suspicion × fleet × strategy grid, Sybil included, plus a PO-policy
//! slice) three ways over the persistent-pool runner:
//!
//! 1. a 1-thread `SweepScheduler` pass — the serial reference;
//! 2. a cell-at-a-time pass on an 8-worker runner (trial-level
//!    parallelism only — the pre-scenario execution model), timed as
//!    `cells_per_sec`;
//! 3. a cell-parallel `SweepScheduler` pass on the same 8-worker runner
//!    (cells and trials share one pool via the two-level work queue),
//!    timed as `cells_per_sec_parallel`.
//!
//! All three reports must be bit-identical — the binary exits non-zero
//! (failing the CI job) if the parallel and serial reports differ. It
//! also prints the `CrossCheck` of every rate-disciplined cell against
//! the abstract S2 model, measures the worker pool's speedup over
//! scoped spawns, and times `Stack::pump` on a fixed S2 workload.
//!
//! The **availability slice** (`scenario::availability_sweep`: outage
//! schedules × paced/outage-strike on fortified S2 plus the bare-PB S1
//! baseline) runs serial and cell-parallel too, must agree bit-for-bit,
//! and contributes `availability_cells_per_sec`, the mean downtime
//! fraction and the mean failover latency to `BENCH_campaign.json`.
//!
//! The **fault slice** (`scenario::fault_sweep`: clean / light-loss /
//! heavy-loss network-fault coordinates on fortified S2 plus the
//! bare-PB S1 baseline) runs the same three-way bit-identity check and
//! contributes `fault_cells_per_sec`, `mean_goodput_fraction` and
//! `mean_retries_per_request`.
//!
//! The **shard slice** (`scenario::shard_sweep`: a vacuous coordinate,
//! both cross-shard placements on a 3-group fleet, and a concentrated
//! fleet with a mid-trial rebalance) runs the same three-way
//! bit-identity check and contributes `shard_cells_per_sec` and
//! `hot_shard_lifetime_ratio` (concentrate/spread mean hottest-shard
//! lifetime — below 1 when concentrating the probe budget pays).
//!
//! The **repair slice** (`scenario::repair_sweep`: a vacuous coordinate
//! plus one-crash, two-crash-staggered and two-crash-storm recovery
//! schedules on the VSR-backed S0 tier) runs the same three-way
//! bit-identity check and contributes `repair_cells_per_sec` and
//! `mean_view_change_latency` — the measured view-change detection
//! window, which must sit at the SMR view timer, not the PB failover
//! timeout.
//!
//! The **campaign slice** runs the protocol campaign grid
//! ([`CampaignGrid::paper_default`]) through its arena-reusing trial
//! path, contributing `campaign_cells_per_sec`, plus a warm-vs-cold
//! arena microbenchmark whose ratio is `arena_reuse_speedup` — the
//! per-trial stack-assembly cost the trial arena saves.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin campaign [out_path]
//! ```

use fortress_attack::campaign::StrategyKind;
use fortress_sim::campaign_mc::{run_cell_measured, CampaignGrid};
use fortress_sim::runner::{trial_seed, Runner, TrialBudget};
use fortress_sim::scenario::{
    availability_sweep, fault_sweep, paper_default_sweep, repair_sweep, run_scenario_measured,
    shard_sweep, CrossCheck, SweepCell, SweepOutcome, SweepReport, SweepScheduler, CELL_CHUNK,
};
use fortress_sim::clear_arena;
use std::time::Instant;

/// Adaptive per-cell budget: protocol trials are ms-scale, so spend them
/// where the lifetime variance demands (burst cells are far noisier than
/// paced cells) and cap the sweep's total cost.
const BUDGET: TrialBudget = TrialBudget::TargetRse {
    target: 0.05,
    min_trials: 64,
    max_trials: 512,
    batch: 64,
};

/// The pool-vs-spawn microbenchmark regime: many tiny batches, the shape
/// of an adaptive campaign cell's stopping checks.
const MICRO_CALLS: u64 = 400;
const MICRO_TRIALS_PER_CALL: u64 = 64;

/// Fixed S2 pump workload: benign requests plus wrong-key probes, the
/// traffic mix a campaign trial pushes through `Stack::pump`.
const PUMP_REQUESTS: u64 = 1_500;

/// Trials of the arena-reuse microbenchmark, run twice: once with the
/// trial arena warm (every trial re-keys a pooled stack shell) and once
/// with the arena cleared before every trial (every trial pays the
/// fresh assembly).
const ARENA_TRIALS: u64 = 200;

/// Drives the fixed S2 pump workload and returns
/// `(deliveries, wall_s)` — deliveries as counted by the transport, so
/// the metric tracks real per-hop dispatch work (proxy fan-out, server
/// replies, exploit sniffing), not request count.
fn pump_throughput() -> (u64, f64) {
    use fortress_core::client::FortressClient;
    use fortress_core::system::{Stack, StackConfig, SystemClass};
    use fortress_obf::keys::RandomizationKey;
    use fortress_obf::scheme::Scheme;

    let mut stack = Stack::new(StackConfig {
        class: SystemClass::S2Fortress,
        seed: 0x9049,
        ..StackConfig::default()
    })
    .expect("assembly");
    stack.add_client("bench");
    let mut client = FortressClient::new("bench", stack.authority(), stack.ns().clone());
    let true_key = stack.server_keys()[0];
    let start = Instant::now();
    for i in 0..PUMP_REQUESTS {
        // 3 benign requests to 1 wrong-key probe, round-robin.
        let req = if i % 4 == 3 {
            let wrong = RandomizationKey(true_key.0 ^ (i | 1));
            let mut probe = client.request(b"");
            probe.op = Scheme::Aslr.craft_exploit(wrong).to_bytes();
            probe
        } else {
            client.request(b"PUT k v")
        };
        stack.submit("bench", &req);
        stack.pump();
        stack.drain_client("bench");
    }
    let wall = start.elapsed().as_secs_f64();
    (stack.net_stats().delivered, wall)
}

fn micro_workload(runner: &Runner, scoped: bool) -> f64 {
    use rand::Rng;
    let start = Instant::now();
    let mut acc = 0.0;
    for call in 0..MICRO_CALLS {
        let stats = if scoped {
            runner.run_scoped(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        } else {
            runner.run(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        };
        acc += stats.mean();
    }
    assert!(acc.is_finite());
    start.elapsed().as_secs_f64()
}

/// The pre-scenario execution model, kept as the timing baseline: cells
/// strictly one at a time, each fanning its trials over `runner`'s pool.
fn run_cells_serially(cells: &[SweepCell], runner: &Runner) -> SweepReport {
    let runner = runner.clone().with_chunk(CELL_CHUNK);
    SweepReport {
        cells: cells
            .iter()
            .map(|cell| {
                let (stats, avail) =
                    run_scenario_measured(cell.spec, &runner, BUDGET, cell.seed);
                SweepOutcome::measured(cell, stats, avail)
            })
            .collect(),
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let base_seed = 0xF0_47;
    let cells = paper_default_sweep(base_seed);
    let n_cells = cells.len();
    let runner8 = Runner::with_threads(8);

    // Pass 1: the 1-thread scheduler — the bit-exact serial reference.
    let serial = SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&cells);
    // Pass 2 (timed): cell-at-a-time on 8 workers — trial parallelism
    // only, the pre-scenario model and the denominator of the speedup.
    let start = Instant::now();
    let cell_serial = run_cells_serially(&cells, &runner8);
    let wall = start.elapsed().as_secs_f64();
    // Pass 3 (timed): the cell-parallel scheduler on the same 8 workers.
    let start = Instant::now();
    let parallel = SweepScheduler::new(&runner8, BUDGET).run(&cells);
    let parallel_wall = start.elapsed().as_secs_f64();

    let deterministic = parallel.to_json() == serial.to_json()
        && cell_serial.to_json() == serial.to_json();
    assert!(
        deterministic,
        "sweep reports diverged between the serial reference, the cell-serial \
         pass and the cell-parallel scheduler — determinism contract broken"
    );
    let trials_total: u64 = parallel.cells.iter().map(|o| o.estimate.n).sum();
    let cells_per_sec = n_cells as f64 / wall;
    let cells_per_sec_parallel = n_cells as f64 / parallel_wall;
    let parallel_speedup = cells_per_sec_parallel / cells_per_sec;

    println!("{}", parallel.to_table().to_aligned());
    println!("== cross-check: protocol cells vs abstract S2 kappa predictions ==");
    println!("{}", CrossCheck::of(&parallel).to_table().to_aligned());

    // The availability slice: outage-bearing cells through the
    // cell-at-a-time reference path (the same independent comparator
    // the main sweep uses — a scheduler-internal bug that is
    // thread-count-invariant would slip past a scheduler-vs-scheduler
    // diff), the 1-thread scheduler, and the cell-parallel scheduler;
    // three-way bit-identity required.
    let avail_cells = availability_sweep(base_seed);
    let avail_reference = run_cells_serially(&avail_cells, &Runner::with_threads(1));
    let avail_serial =
        SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&avail_cells);
    let start = Instant::now();
    let avail_parallel = SweepScheduler::new(&runner8, BUDGET).run(&avail_cells);
    let avail_wall = start.elapsed().as_secs_f64();
    let avail_deterministic = avail_serial.to_json() == avail_parallel.to_json()
        && avail_reference.to_json() == avail_serial.to_json();
    assert!(
        avail_deterministic,
        "availability sweep reports diverged between the cell-at-a-time \
         reference, the serial scheduler and the cell-parallel scheduler — \
         determinism contract broken"
    );
    let n_avail_cells = avail_cells.len();
    let availability_cells_per_sec = n_avail_cells as f64 / avail_wall;
    let mean_downtime = avail_parallel
        .mean_downtime_fraction()
        .expect("every availability cell measures downtime");
    let mut latency = fortress_sim::stats::RunningStats::new();
    for o in &avail_parallel.cells {
        if o.avail.failover_latency.n() > 0 {
            latency.push(o.avail.failover_latency.mean());
        }
    }
    let mean_failover_latency = if latency.n() > 0 {
        latency.mean().to_string()
    } else {
        "null".to_string()
    };
    println!("== availability slice (outage axis) ==");
    println!("{}", avail_parallel.to_table().to_aligned());

    // The fault slice: degraded-network cells through the same three
    // paths, three-way bit-identity required.
    let fault_cells = fault_sweep(base_seed);
    let fault_reference = run_cells_serially(&fault_cells, &Runner::with_threads(1));
    let fault_serial =
        SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&fault_cells);
    let start = Instant::now();
    let fault_parallel = SweepScheduler::new(&runner8, BUDGET).run(&fault_cells);
    let fault_wall = start.elapsed().as_secs_f64();
    let fault_deterministic = fault_serial.to_json() == fault_parallel.to_json()
        && fault_reference.to_json() == fault_serial.to_json();
    assert!(
        fault_deterministic,
        "fault sweep reports diverged between the cell-at-a-time reference, \
         the serial scheduler and the cell-parallel scheduler — determinism \
         contract broken"
    );
    let n_fault_cells = fault_cells.len();
    let fault_cells_per_sec = n_fault_cells as f64 / fault_wall;
    let mean_goodput = fault_parallel
        .mean_goodput_fraction()
        .expect("degraded fault cells measure goodput");
    let mean_retries = fault_parallel
        .mean_retries_per_request()
        .expect("degraded fault cells count retries");
    println!("== fault slice (network-fault axis) ==");
    println!("{}", fault_parallel.to_table().to_aligned());

    // The shard slice: multi-tenant fleet cells through the same three
    // paths, three-way bit-identity required.
    let shard_cells = shard_sweep(base_seed);
    let shard_reference = run_cells_serially(&shard_cells, &Runner::with_threads(1));
    let shard_serial =
        SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&shard_cells);
    let start = Instant::now();
    let shard_parallel = SweepScheduler::new(&runner8, BUDGET).run(&shard_cells);
    let shard_wall = start.elapsed().as_secs_f64();
    let shard_deterministic = shard_serial.to_json() == shard_parallel.to_json()
        && shard_reference.to_json() == shard_serial.to_json();
    assert!(
        shard_deterministic,
        "shard sweep reports diverged between the cell-at-a-time reference, \
         the serial scheduler and the cell-parallel scheduler — determinism \
         contract broken"
    );
    let n_shard_cells = shard_cells.len();
    let shard_cells_per_sec = n_shard_cells as f64 / shard_wall;
    let hot_shard_lifetime_ratio = shard_parallel
        .hot_shard_lifetime_ratio()
        .expect("the shard slice carries both placements");
    println!("== shard slice (multi-tenant fleet axis) ==");
    println!("{}", shard_parallel.to_table().to_aligned());

    // The repair slice: VSR view-change + divergence-priced recovery
    // cells through the same three paths, three-way bit-identity
    // required.
    let repair_cells = repair_sweep(base_seed);
    let repair_reference = run_cells_serially(&repair_cells, &Runner::with_threads(1));
    let repair_serial =
        SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&repair_cells);
    let start = Instant::now();
    let repair_parallel = SweepScheduler::new(&runner8, BUDGET).run(&repair_cells);
    let repair_wall = start.elapsed().as_secs_f64();
    let repair_deterministic = repair_serial.to_json() == repair_parallel.to_json()
        && repair_reference.to_json() == repair_serial.to_json();
    assert!(
        repair_deterministic,
        "repair sweep reports diverged between the cell-at-a-time reference, \
         the serial scheduler and the cell-parallel scheduler — determinism \
         contract broken"
    );
    let n_repair_cells = repair_cells.len();
    let repair_cells_per_sec = n_repair_cells as f64 / repair_wall;
    let mean_view_change_latency = repair_parallel
        .mean_view_change_latency()
        .expect("repair-bearing cells complete view changes");
    println!("== repair slice (VSR view-change + recovery axis) ==");
    println!("{}", repair_parallel.to_table().to_aligned());

    // The protocol campaign grid through the arena-reusing trial path:
    // `CampaignGrid::run` schedules cells on the shared pool and every
    // trial re-keys a pooled stack shell instead of assembling a fresh
    // one.
    let grid = CampaignGrid::paper_default();
    let n_campaign_cells = grid.cells().len();
    let start = Instant::now();
    let campaign_report = grid.run(&runner8, BUDGET, base_seed);
    let campaign_wall = start.elapsed().as_secs_f64();
    let campaign_cells_per_sec = n_campaign_cells as f64 / campaign_wall;
    let campaign_trials: u64 = campaign_report.cells.iter().map(|o| o.estimate.n).sum();
    println!("== protocol campaign grid (arena-reused trials) ==");
    println!("{}", campaign_report.to_table().to_aligned());

    // Arena-reuse microbenchmark: the exact same trial stream, warm vs
    // cleared-before-every-trial, on one grid cell's experiment. The
    // ratio is the per-trial cost of stack assembly the arena saves.
    let arena_exp = grid.experiment(&grid.cells()[0]);
    let arena_strategy = StrategyKind::PacedBelowThreshold;
    let arena_seed = 0x000A_7E4A;
    clear_arena();
    let _ = run_cell_measured(&arena_exp, arena_strategy, trial_seed(arena_seed, 0));
    let start = Instant::now();
    for i in 1..=ARENA_TRIALS {
        let _ = run_cell_measured(&arena_exp, arena_strategy, trial_seed(arena_seed, i));
    }
    let arena_warm_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for i in 1..=ARENA_TRIALS {
        clear_arena();
        let _ = run_cell_measured(&arena_exp, arena_strategy, trial_seed(arena_seed, i));
    }
    let arena_cold_wall = start.elapsed().as_secs_f64();
    let arena_reuse_speedup = arena_cold_wall / arena_warm_wall;

    // Pool vs per-call scoped spawning, µs-scale batch regime. Pin four
    // workers (even on smaller machines): the comparison is the cost of
    // four scoped spawns per call vs four persistent workers, which is
    // about OS overhead, not core count. Warm both paths first.
    let micro_runner = Runner::with_threads(4).with_chunk(16);
    let _ = micro_workload(&micro_runner, false);
    let _ = micro_workload(&micro_runner, true);
    let pooled_wall = micro_workload(&micro_runner, false);
    let scoped_wall = micro_workload(&micro_runner, true);
    let pool_speedup = scoped_wall / pooled_wall;

    // Stack::pump hot-path throughput on the fixed S2 workload (warm
    // once, then measure).
    let _ = pump_throughput();
    let (pump_deliveries, pump_wall) = pump_throughput();
    let deliveries_per_sec = pump_deliveries as f64 / pump_wall;

    let json = format!(
        "{{\n  \"workload\": \"paper default sweep (SO suspicion x fleet x strategy grid \
         incl sybil + PO slice), adaptive rse<=0.05, 64..512 trials/cell\",\n  \
         \"timed_pass_workers\": 8,\n  \
         \"machine_cores\": {cores},\n  \
         \"cells\": {n_cells},\n  \
         \"trials_total\": {trials_total},\n  \
         \"wall_s\": {wall:.4},\n  \
         \"cells_per_sec\": {cells_per_sec:.2},\n  \
         \"parallel_wall_s\": {parallel_wall:.4},\n  \
         \"cells_per_sec_parallel\": {cells_per_sec_parallel:.2},\n  \
         \"cell_parallel_speedup\": {parallel_speedup:.3},\n  \
         \"deterministic_serial_vs_parallel\": {deterministic},\n  \
         \"availability\": {{\n    \
           \"workload\": \"outage slice: none/periodic/poisson x paced+outage_strike on S2 + bare-PB S1 baseline\",\n    \
           \"cells\": {n_avail_cells},\n    \
           \"wall_s\": {avail_wall:.4},\n    \
           \"availability_cells_per_sec\": {availability_cells_per_sec:.2},\n    \
           \"mean_downtime_fraction\": {mean_downtime:.6},\n    \
           \"mean_failover_latency\": {mean_failover_latency},\n    \
           \"deterministic_serial_vs_parallel\": {avail_deterministic}\n  }},\n  \
         \"faults\": {{\n    \
           \"workload\": \"fault slice: none/light-loss/heavy-loss x retry policy on S2 + bare-PB S1 baseline\",\n    \
           \"cells\": {n_fault_cells},\n    \
           \"wall_s\": {fault_wall:.4},\n    \
           \"fault_cells_per_sec\": {fault_cells_per_sec:.2},\n    \
           \"mean_goodput_fraction\": {mean_goodput:.6},\n    \
           \"mean_retries_per_request\": {mean_retries:.6},\n    \
           \"deterministic_serial_vs_parallel\": {fault_deterministic}\n  }},\n  \
         \"shards\": {{\n    \
           \"workload\": \"shard slice: vacuous + 3-group zipf1.2 concentrate/spread + concentrate reb@6 on S2\",\n    \
           \"cells\": {n_shard_cells},\n    \
           \"wall_s\": {shard_wall:.4},\n    \
           \"shard_cells_per_sec\": {shard_cells_per_sec:.2},\n    \
           \"hot_shard_lifetime_ratio\": {hot_shard_lifetime_ratio:.4},\n    \
           \"deterministic_serial_vs_parallel\": {shard_deterministic}\n  }},\n  \
         \"repairs\": {{\n    \
           \"workload\": \"repair slice: vacuous + 1-crash + 2-crash staggered/storm VSR recovery on S0\",\n    \
           \"cells\": {n_repair_cells},\n    \
           \"wall_s\": {repair_wall:.4},\n    \
           \"repair_cells_per_sec\": {repair_cells_per_sec:.2},\n    \
           \"mean_view_change_latency\": {mean_view_change_latency:.4},\n    \
           \"deterministic_serial_vs_parallel\": {repair_deterministic}\n  }},\n  \
         \"campaign\": {{\n    \
           \"workload\": \"paper_default grid: 3 suspicion x 3 fleet x 5 strategies, arena-reused trials\",\n    \
           \"cells\": {n_campaign_cells},\n    \
           \"trials_total\": {campaign_trials},\n    \
           \"wall_s\": {campaign_wall:.4},\n    \
           \"campaign_cells_per_sec\": {campaign_cells_per_sec:.2},\n    \
           \"arena_trials\": {ARENA_TRIALS},\n    \
           \"arena_cold_wall_s\": {arena_cold_wall:.4},\n    \
           \"arena_warm_wall_s\": {arena_warm_wall:.4},\n    \
           \"arena_reuse_speedup\": {arena_reuse_speedup:.3}\n  }},\n  \
         \"pool_microbench\": {{\n    \
           \"calls\": {MICRO_CALLS},\n    \
           \"trials_per_call\": {MICRO_TRIALS_PER_CALL},\n    \
           \"scoped_spawn_wall_s\": {scoped_wall:.4},\n    \
           \"pooled_wall_s\": {pooled_wall:.4},\n    \
           \"pool_speedup\": {pool_speedup:.3}\n  }},\n  \
         \"pump\": {{\n    \
           \"workload\": \"S2 default, {PUMP_REQUESTS} requests (3 benign : 1 wrong-key probe)\",\n    \
           \"deliveries\": {pump_deliveries},\n    \
           \"wall_s\": {pump_wall:.4},\n    \
           \"deliveries_per_sec\": {deliveries_per_sec:.0}\n  }}\n}}\n",
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[written {out_path}]"),
        Err(e) => {
            eprintln!("[could not write {out_path}: {e}]");
            std::process::exit(1);
        }
    }
}
