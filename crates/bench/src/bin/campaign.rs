//! CAMPAIGN — the protocol-level adversary campaign grid, plus the CI
//! smoke artifact `BENCH_campaign.json`.
//!
//! Runs the default 3 (suspicion) × 3 (fleet size) × 4 (strategy) grid
//! through the persistent-pool runner with an RSE-adaptive trial budget,
//! checks the determinism contract the hard way (the full report JSON
//! must be identical at 1 and 8 threads), measures the worker pool's
//! speedup over the old scoped-spawn-per-call execution on a rapid-fire
//! small-batch workload — the regime the pool exists for — and times
//! `Stack::pump` on a fixed S2 workload (deliveries/sec through the
//! envelope dispatch), the protocol-level hot path the `WireMsg` /
//! `Transport` redesign targets.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin campaign [out_path]
//! ```
//!
//! The per-cell table goes to stdout; the JSON artifact (cells/sec, pool
//! speedup, determinism verdict) to `out_path` (default
//! `BENCH_campaign.json`).

use fortress_sim::campaign_mc::CampaignGrid;
use fortress_sim::runner::{Runner, TrialBudget};
use std::time::Instant;

/// Adaptive per-cell budget: protocol trials are ms-scale, so spend them
/// where the lifetime variance demands (burst cells are far noisier than
/// paced cells) and cap the grid's total cost.
const BUDGET: TrialBudget = TrialBudget::TargetRse {
    target: 0.05,
    min_trials: 64,
    max_trials: 512,
    batch: 64,
};

/// The pool-vs-spawn microbenchmark regime: many tiny batches, the shape
/// of an adaptive campaign cell's stopping checks.
const MICRO_CALLS: u64 = 400;
const MICRO_TRIALS_PER_CALL: u64 = 64;

/// Fixed S2 pump workload: benign requests plus wrong-key probes, the
/// traffic mix a campaign trial pushes through `Stack::pump`.
const PUMP_REQUESTS: u64 = 1_500;

/// Drives the fixed S2 pump workload and returns
/// `(deliveries, wall_s)` — deliveries as counted by the transport, so
/// the metric tracks real per-hop dispatch work (proxy fan-out, server
/// replies, exploit sniffing), not request count.
fn pump_throughput() -> (u64, f64) {
    use fortress_core::client::FortressClient;
    use fortress_core::system::{Stack, StackConfig, SystemClass};
    use fortress_obf::keys::RandomizationKey;
    use fortress_obf::scheme::Scheme;

    let mut stack = Stack::new(StackConfig {
        class: SystemClass::S2Fortress,
        seed: 0x9049,
        ..StackConfig::default()
    })
    .expect("assembly");
    stack.add_client("bench");
    let mut client = FortressClient::new("bench", stack.authority(), stack.ns().clone());
    let true_key = stack.server_keys()[0];
    let start = Instant::now();
    for i in 0..PUMP_REQUESTS {
        // 3 benign requests to 1 wrong-key probe, round-robin.
        let req = if i % 4 == 3 {
            let wrong = RandomizationKey(true_key.0 ^ (i | 1));
            let mut probe = client.request(b"");
            probe.op = Scheme::Aslr.craft_exploit(wrong).to_bytes();
            probe
        } else {
            client.request(b"PUT k v")
        };
        stack.submit("bench", &req);
        stack.pump();
        stack.drain_client("bench");
    }
    let wall = start.elapsed().as_secs_f64();
    (stack.net_stats().delivered, wall)
}

fn micro_workload(runner: &Runner, scoped: bool) -> f64 {
    use rand::Rng;
    let start = Instant::now();
    let mut acc = 0.0;
    for call in 0..MICRO_CALLS {
        let stats = if scoped {
            runner.run_scoped(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        } else {
            runner.run(call, TrialBudget::Fixed(MICRO_TRIALS_PER_CALL), |i, rng| {
                rng.gen::<f64>() + (i % 5) as f64
            })
        };
        acc += stats.mean();
    }
    assert!(acc.is_finite());
    start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let grid = CampaignGrid::paper_default();
    let n_cells = grid.cells().len();
    let base_seed = 0xF0_47;

    // Two passes double as the determinism check: the serial reference,
    // then a timed 8-worker pooled pass whose report must match it bit
    // for bit (1 vs 8 threads, per the runner contract).
    let serial = grid.run(&Runner::with_threads(1), BUDGET, base_seed);
    let start = Instant::now();
    let report = grid.run(&Runner::with_threads(8), BUDGET, base_seed);
    let wall = start.elapsed().as_secs_f64();
    let deterministic = report.to_json() == serial.to_json();
    assert!(
        deterministic,
        "campaign grid diverged between 1 and 8 threads — determinism contract broken"
    );
    let trials_total: u64 = report.cells.iter().map(|o| o.estimate.n).sum();
    let cells_per_sec = n_cells as f64 / wall;

    println!("{}", report.to_table().to_aligned());

    // Pool vs per-call scoped spawning, µs-scale batch regime. Pin four
    // workers (even on smaller machines): the comparison is the cost of
    // four scoped spawns per call vs four persistent workers, which is
    // about OS overhead, not core count. Warm both paths first.
    let micro_runner = Runner::with_threads(4).with_chunk(16);
    let _ = micro_workload(&micro_runner, false);
    let _ = micro_workload(&micro_runner, true);
    let pooled_wall = micro_workload(&micro_runner, false);
    let scoped_wall = micro_workload(&micro_runner, true);
    let pool_speedup = scoped_wall / pooled_wall;

    // Stack::pump hot-path throughput on the fixed S2 workload (warm
    // once, then measure).
    let _ = pump_throughput();
    let (pump_deliveries, pump_wall) = pump_throughput();
    let deliveries_per_sec = pump_deliveries as f64 / pump_wall;

    let json = format!(
        "{{\n  \"workload\": \"campaign grid {n_suspicion}x{n_fleet}x{n_strategy} \
         (suspicion x fleet x strategy), adaptive rse<=0.05, 64..512 trials/cell\",\n  \
         \"timed_pass_workers\": 8,\n  \
         \"machine_cores\": {cores},\n  \
         \"cells\": {n_cells},\n  \
         \"trials_total\": {trials_total},\n  \
         \"wall_s\": {wall:.4},\n  \
         \"cells_per_sec\": {cells_per_sec:.2},\n  \
         \"deterministic_1_vs_8_threads\": {deterministic},\n  \
         \"pool_microbench\": {{\n    \
           \"calls\": {MICRO_CALLS},\n    \
           \"trials_per_call\": {MICRO_TRIALS_PER_CALL},\n    \
           \"scoped_spawn_wall_s\": {scoped_wall:.4},\n    \
           \"pooled_wall_s\": {pooled_wall:.4},\n    \
           \"pool_speedup\": {pool_speedup:.3}\n  }},\n  \
         \"pump\": {{\n    \
           \"workload\": \"S2 default, {PUMP_REQUESTS} requests (3 benign : 1 wrong-key probe)\",\n    \
           \"deliveries\": {pump_deliveries},\n    \
           \"wall_s\": {pump_wall:.4},\n    \
           \"deliveries_per_sec\": {deliveries_per_sec:.0}\n  }}\n}}\n",
        n_suspicion = grid.suspicions.len(),
        n_fleet = grid.fleet_sizes.len(),
        n_strategy = grid.strategies.len(),
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[written {out_path}]"),
        Err(e) => {
            eprintln!("[could not write {out_path}: {e}]");
            std::process::exit(1);
        }
    }
}
