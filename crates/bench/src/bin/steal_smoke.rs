//! STEAL SMOKE — the work-stealing determinism gate for CI.
//!
//! Runs the network-fault sweep and the protocol campaign grid three
//! ways each:
//!
//! 1. a 1-thread scheduler — the bit-exact serial reference;
//! 2. an 8-worker pool under the normal queue schedule;
//! 3. an 8-worker pool in **forced-steal** mode
//!    ([`Runner::with_forced_steal`]): no chunk reaches a worker via
//!    the queue, every one is claimed off the steal board — the most
//!    adversarial schedule the pool can produce.
//!
//! All three reports must be bit-identical (stealing splits a
//! straggler's remaining trial range at a chunk boundary, so it changes
//! who executes a chunk, never its seeds, range or merge slot), and the
//! forced runs must report a nonzero steal count — proving the steal
//! path actually executed the work. The binary exits non-zero on any
//! divergence; CI greps the emitted JSON for the identity flags.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin steal_smoke [out_path]
//! ```

use fortress_sim::campaign_mc::CampaignGrid;
use fortress_sim::runner::{Runner, TrialBudget};
use fortress_sim::scenario::{fault_sweep, SweepScheduler};
use std::time::Instant;

/// Adaptive per-cell budget, matching the campaign binary: adaptive
/// stopping makes the trial schedule itself depend on merged stats, so
/// a steal that perturbed any merge would also perturb the budget —
/// strictly harder to pass than a fixed count.
const BUDGET: TrialBudget = TrialBudget::TargetRse {
    target: 0.05,
    min_trials: 64,
    max_trials: 512,
    batch: 64,
};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_steal.json".to_string());
    let base_seed = 0xF0_47;

    // Fault sweep, three ways.
    let cells = fault_sweep(base_seed);
    let serial = SweepScheduler::new(&Runner::with_threads(1), BUDGET).run(&cells);
    let pooled = SweepScheduler::new(&Runner::with_threads(8), BUDGET).run(&cells);
    let forced_runner = Runner::with_threads(8).with_forced_steal(true);
    let start = Instant::now();
    let forced = SweepScheduler::new(&forced_runner, BUDGET).run(&cells);
    let forced_wall = start.elapsed().as_secs_f64();
    let fault_steals = forced_runner.steals();
    let fault_identical =
        serial.to_json() == pooled.to_json() && serial.to_json() == forced.to_json();
    assert!(
        fault_identical,
        "fault sweep diverged between serial, pooled and forced-steal schedules"
    );
    assert!(
        fault_steals > 0,
        "forced-steal mode must route chunks through the steal board"
    );

    // Campaign grid, three ways.
    let grid = CampaignGrid::paper_default();
    let g_serial = grid.run(&Runner::with_threads(1), BUDGET, base_seed);
    let g_pooled = grid.run(&Runner::with_threads(8), BUDGET, base_seed);
    let g_forced_runner = Runner::with_threads(8).with_forced_steal(true);
    let start = Instant::now();
    let g_forced = grid.run(&g_forced_runner, BUDGET, base_seed);
    let g_forced_wall = start.elapsed().as_secs_f64();
    let campaign_steals = g_forced_runner.steals();
    let campaign_identical = g_serial.to_json() == g_pooled.to_json()
        && g_serial.to_json() == g_forced.to_json();
    assert!(
        campaign_identical,
        "campaign grid diverged between serial, pooled and forced-steal schedules"
    );
    assert!(
        campaign_steals > 0,
        "forced-steal mode must route campaign chunks through the steal board"
    );

    let json = format!(
        "{{\n  \"workload\": \"serial vs 8-thread vs forced-steal, fault sweep + campaign grid, adaptive rse<=0.05\",\n  \
           \"fault_cells\": {},\n  \
           \"fault_forced_wall_s\": {forced_wall:.4},\n  \
           \"fault_steals\": {fault_steals},\n  \
           \"fault_three_way_identical\": {fault_identical},\n  \
           \"campaign_cells\": {},\n  \
           \"campaign_forced_wall_s\": {g_forced_wall:.4},\n  \
           \"campaign_steals\": {campaign_steals},\n  \
           \"campaign_three_way_identical\": {campaign_identical}\n}}\n",
        cells.len(),
        grid.cells().len(),
    );
    print!("{json}");
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("[written {out_path}]"),
        Err(e) => {
            eprintln!("[could not write {out_path}: {e}]");
            std::process::exit(1);
        }
    }
}
