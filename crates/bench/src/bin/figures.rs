//! Regenerates every figure/table of the paper (and the ablations) as
//! aligned terminal tables and CSV files.
//!
//! ```text
//! cargo run --release -p fortress-bench --bin figures -- all
//! cargo run --release -p fortress-bench --bin figures -- fig1 fig2 ordering
//! ```
//!
//! CSV output lands in `results/` (created if missing).

use std::fs;
use std::path::Path;

use fortress_bench as figures;
use fortress_sim::report::CsvTable;

fn emit(name: &str, title: &str, table: &CsvTable) {
    println!("== {title} ==");
    println!("{}", table.to_aligned());
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        match fs::write(&path, table.to_csv()) {
            Ok(()) => println!("[written {}]\n", path.display()),
            Err(e) => println!("[could not write {}: {e}]\n", path.display()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1", "fig2", "ordering", "trends", "ablation-probe", "ablation-period",
            "ablation-fleet", "ablation-entropy", "proto", "overhead",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for what in wanted {
        match what {
            // RSE-adaptive Monte-Carlo budget: the high-variance small-α
            // corner buys the trials it needs for a 2% relative standard
            // error, while the cheap large-α corner stops at the floor —
            // no more flat 20k-trials-everywhere spending.
            "fig1" => emit(
                "figure1_lifetimes",
                "Figure 1 — Expected Lifetime Comparison (chi = 2^16, S2PO at kappa = 0.5, MC at rse<=2%)",
                &figures::figure1_adaptive(4, 0.5, 0.02),
            ),
            "fig2" => emit(
                "figure2_kappa",
                "Figure 2 — Expected Lifetimes of the S2PO systems as kappa varies",
                &figures::figure2(4, 0),
            ),
            "ordering" => emit(
                "ordering_summary",
                "Section 6 summary ordering: S0PO ->(k>0) S2PO ->(k<=0.9) S1PO -> S1SO -> S0SO",
                &figures::ordering_summary(),
            ),
            "trends" => emit(
                "trends",
                "The four Section 6 trends at alpha = 1e-3",
                &figures::trends(1e-3),
            ),
            "ablation-probe" => emit(
                "ablation_probe_model",
                "ABL-PROBE — broadcast vs independent probes (trend 1 flips)",
                &figures::ablation_probe_model(2),
            ),
            "ablation-period" => emit(
                "ablation_period",
                "ABL-P — generalized re-randomization period (alpha = 1e-2)",
                &figures::ablation_period(1e-2, &[1, 2, 4, 8, 16, 32]),
            ),
            "ablation-fleet" => emit(
                "ablation_fleet",
                "ABL-NP — proxy count sweep for S2PO (alpha = 1e-3, kappa = 0.1)",
                &figures::ablation_fleet(1e-3, 0.1, &[1, 2, 3, 4, 5, 6]),
            ),
            "ablation-entropy" => emit(
                "ablation_entropy",
                "ABL-ENT — key entropy sweep at fixed omega = 64 probes/step",
                &figures::ablation_entropy(64.0, &[12, 14, 16, 20, 24]),
            ),
            "proto" => emit(
                "protocol_comparison",
                "PROTO — protocol-level stacks vs analytic model (chi = 2^8, omega = 8)",
                &figures::protocol_comparison(40),
            ),
            "overhead" => emit(
                "proxy_overhead",
                "OVH — network hops per answered request, 1-tier vs FORTRESS",
                &figures::proxy_overhead(50),
            ),
            other => eprintln!("unknown figure `{other}` (try: all, fig1, fig2, ordering, trends, ablation-probe, ablation-period, ablation-fleet, ablation-entropy, proto, overhead)"),
        }
    }
}
