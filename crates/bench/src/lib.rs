//! Figure regeneration for the FORTRESS reproduction.
//!
//! The paper's evaluation consists of Figure 1 (expected-lifetime
//! comparison across S0SO, S1SO, S1PO, S2PO, S0PO), Figure 2 (S2PO
//! lifetimes as κ varies) and the §6 summary ordering. Every artifact has
//! a generator here returning a [`CsvTable`]; the `figures` binary prints
//! them and the Criterion benches measure their regeneration. Ablations
//! beyond the paper (probe model, re-randomization period, fleet sizes,
//! key entropy, protocol-level corroboration, proxy overhead) are indexed
//! in DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fortress_markov::{LaunchPad, PeriodChainSpec};
use fortress_model::lifetime::{expected_lifetime, figure1_systems};
use fortress_model::ordering::verify_paper_ordering;
use fortress_model::params::{
    paper_alpha_grid, paper_alpha_params, paper_kappa_grid, AttackParams, Policy, ProbeModel,
};
use fortress_model::SystemKind;
use fortress_sim::event_mc::sample_lifetime;
use fortress_sim::protocol_mc::ProtocolExperiment;
use fortress_sim::report::{fmt_num, CsvTable};
use fortress_sim::runner::{Runner, TrialBudget};

/// The paper's key-space size: 16 bits of entropy (PaX ASLR).
pub const PAPER_CHI: f64 = 65536.0;

/// Monte-Carlo mean lifetime via the event-driven sampler, fanned out
/// over `runner`. Deterministic in `(seed, budget)` at any thread count.
fn mc_mean(
    runner: &Runner,
    kind: SystemKind,
    policy: Policy,
    params: &AttackParams,
    budget: TrialBudget,
    seed: u64,
) -> f64 {
    let params = *params;
    runner
        .run(seed, budget, move |_, rng| {
            sample_lifetime(kind, policy, &params, LaunchPad::NextStep, rng) as f64
        })
        .mean()
}

/// **FIG1** — Figure 1: expected lifetime of the five systems across the
/// α grid (S2PO at the given κ). Columns: analytic EL and event-driven
/// Monte-Carlo EL per system.
pub fn figure1(points_per_decade: usize, kappa: f64, mc_trials: u64) -> CsvTable {
    figure1_with(
        &Runner::new(),
        points_per_decade,
        kappa,
        TrialBudget::Fixed(mc_trials),
    )
}

/// [`figure1`] with an adaptive trial budget: each grid cell runs until
/// its Monte-Carlo mean reaches `target_rse` relative standard error (or
/// the budget's cap), so the high-variance small-α corner gets the
/// trials it needs without over-sampling the cheap corner.
pub fn figure1_adaptive(points_per_decade: usize, kappa: f64, target_rse: f64) -> CsvTable {
    figure1_with(
        &Runner::new(),
        points_per_decade,
        kappa,
        TrialBudget::adaptive(target_rse),
    )
}

/// [`figure1`] with explicit runner and per-cell trial budget — the
/// entry point for thread-count-pinned determinism tests and the bench
/// smoke harness.
pub fn figure1_with(
    runner: &Runner,
    points_per_decade: usize,
    kappa: f64,
    budget: TrialBudget,
) -> CsvTable {
    let systems = figure1_systems(kappa);
    let mut headers: Vec<String> = vec!["alpha".into()];
    for s in &systems {
        headers.push(format!("{}_analytic", s.label()));
        headers.push(format!("{}_mc", s.label()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = CsvTable::new(&header_refs);
    for (i, (alpha, params)) in paper_alpha_params(points_per_decade, PAPER_CHI)
        .expect("grid is valid")
        .into_iter()
        .enumerate()
    {
        let mut row = vec![fmt_num(alpha)];
        for s in &systems {
            let analytic = s.expected_lifetime(&params).expect("valid spec");
            let mc = mc_mean(runner, s.kind, s.policy, &params, budget, 0x51 + i as u64);
            row.push(fmt_num(analytic));
            row.push(fmt_num(mc));
        }
        table.push_row(row);
    }
    table
}

/// **FIG2** — Figure 2: S2PO expected lifetime as κ varies (log scale in
/// the paper; the series speak for themselves as numbers).
pub fn figure2(points_per_decade: usize, mc_trials: u64) -> CsvTable {
    let kappas = paper_kappa_grid();
    let mut headers: Vec<String> = vec!["alpha".into()];
    for k in &kappas {
        headers.push(format!("kappa_{k:.1}"));
    }
    headers.push("S0PO_reference".into());
    headers.push("S1PO_reference".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = CsvTable::new(&header_refs);
    for alpha in paper_alpha_grid(points_per_decade) {
        let params = AttackParams::from_alpha(PAPER_CHI, alpha).expect("grid is valid");
        let mut row = vec![fmt_num(alpha)];
        for &kappa in &kappas {
            let el = expected_lifetime(
                SystemKind::S2Fortress { kappa },
                Policy::Proactive,
                ProbeModel::Broadcast,
                &params,
            )
            .expect("valid spec");
            row.push(fmt_num(el));
        }
        let s0 = expected_lifetime(
            SystemKind::S0Smr,
            Policy::Proactive,
            ProbeModel::Broadcast,
            &params,
        )
        .expect("valid spec");
        let s1 = expected_lifetime(
            SystemKind::S1Pb,
            Policy::Proactive,
            ProbeModel::Broadcast,
            &params,
        )
        .expect("valid spec");
        row.push(fmt_num(s0));
        row.push(fmt_num(s1));
        table.push_row(row);
        let _ = mc_trials; // Figure 2 is analytic; MC coverage lives in FIG1.
    }
    table
}

/// **ORD** — the §6 summary ordering, arrow by arrow.
pub fn ordering_summary() -> CsvTable {
    let reports = verify_paper_ordering(&paper_alpha_grid(5), &paper_kappa_grid(), PAPER_CHI)
        .expect("paper grids are valid");
    let mut table = CsvTable::new(&["arrow", "grid_points", "held", "holds"]);
    for r in reports {
        table.push_row(vec![
            r.arrow.clone(),
            r.checked.to_string(),
            r.held.to_string(),
            r.holds().to_string(),
        ]);
    }
    table
}

/// **TREND1..4** — the four bold §6 trends at a representative α.
pub fn trends(alpha: f64) -> CsvTable {
    let params = AttackParams::from_alpha(PAPER_CHI, alpha).expect("alpha valid");
    let el = |kind, policy| {
        expected_lifetime(kind, policy, ProbeModel::Broadcast, &params).expect("valid")
    };
    let s0so = el(SystemKind::S0Smr, Policy::StartupOnly);
    let s1so = el(SystemKind::S1Pb, Policy::StartupOnly);
    let s1po = el(SystemKind::S1Pb, Policy::Proactive);
    let s2po_05 = el(SystemKind::S2Fortress { kappa: 0.5 }, Policy::Proactive);
    let s2po_09 = el(SystemKind::S2Fortress { kappa: 0.9 }, Policy::Proactive);
    let s2po_0 = el(SystemKind::S2Fortress { kappa: 0.0 }, Policy::Proactive);
    let s0po = el(SystemKind::S0Smr, Policy::Proactive);

    let mut table = CsvTable::new(&["trend", "comparison", "holds"]);
    table.push_row(vec![
        "1: S1SO outlives S0SO".into(),
        format!("{} > {}", fmt_num(s1so), fmt_num(s0so)),
        (s1so > s0so).to_string(),
    ]);
    table.push_row(vec![
        "2: S2PO,S1PO outlive all SO".into(),
        format!(
            "min({}, {}) > max({}, {})",
            fmt_num(s2po_05),
            fmt_num(s1po),
            fmt_num(s1so),
            fmt_num(s0so)
        ),
        (s2po_05.min(s1po) > s1so.max(s0so)).to_string(),
    ]);
    table.push_row(vec![
        "3: S2PO outlives S1PO for kappa<=0.9".into(),
        format!("{} > {}", fmt_num(s2po_09), fmt_num(s1po)),
        (s2po_09 > s1po).to_string(),
    ]);
    table.push_row(vec![
        "4: S0PO outlives S2PO except kappa=0".into(),
        format!(
            "{} > {} and {} > {}",
            fmt_num(s0po),
            fmt_num(s2po_05),
            fmt_num(s2po_0),
            fmt_num(s0po)
        ),
        (s0po > s2po_05 && s2po_0 > s0po).to_string(),
    ]);
    table
}

/// **ABL-PROBE** — broadcast vs independent-per-node probes: trend 1
/// holds under broadcast and flips under independent probing.
pub fn ablation_probe_model(points_per_decade: usize) -> CsvTable {
    let mut table = CsvTable::new(&[
        "alpha",
        "S1SO_broadcast",
        "S0SO_broadcast",
        "S1SO_independent",
        "S0SO_independent",
        "trend1_broadcast",
        "trend1_independent",
    ]);
    for alpha in paper_alpha_grid(points_per_decade) {
        let params = AttackParams::from_alpha(PAPER_CHI, alpha).expect("valid");
        let el = |kind, probe| {
            expected_lifetime(kind, Policy::StartupOnly, probe, &params).expect("valid")
        };
        let s1b = el(SystemKind::S1Pb, ProbeModel::Broadcast);
        let s0b = el(SystemKind::S0Smr, ProbeModel::Broadcast);
        let s1i = el(SystemKind::S1Pb, ProbeModel::IndependentPerNode);
        let s0i = el(SystemKind::S0Smr, ProbeModel::IndependentPerNode);
        table.push_row(vec![
            fmt_num(alpha),
            fmt_num(s1b),
            fmt_num(s0b),
            fmt_num(s1i),
            fmt_num(s0i),
            (s1b > s0b).to_string(),
            (s1i > s0i).to_string(),
        ]);
    }
    table
}

/// **ABL-P** — generalized re-randomization period: Markov-chain EL as P
/// grows from the paper's 1 toward SO-like behavior.
pub fn ablation_period(alpha: f64, periods: &[usize]) -> CsvTable {
    let mut table = CsvTable::new(&["period", "S0PO_chain", "S1PO_chain", "S2PO_chain_k0.5"]);
    for &p in periods {
        let el = |kind| {
            PeriodChainSpec {
                kind,
                alpha,
                period: p,
                launch_pad: LaunchPad::NextStep,
            }
            .expected_lifetime()
            .expect("valid chain")
        };
        table.push_row(vec![
            p.to_string(),
            fmt_num(el(SystemKind::S0Smr)),
            fmt_num(el(SystemKind::S1Pb)),
            fmt_num(el(SystemKind::S2Fortress { kappa: 0.5 })),
        ]);
    }
    table
}

/// **ABL-NP** — proxy-count sweep for S2PO: the all-proxies path weakens
/// as `np` grows (`p = 1 − (1 − κα)(1 − α^np)`), while κ is independent of
/// `np` (Definition 5).
pub fn ablation_fleet(alpha: f64, kappa: f64, np_range: &[usize]) -> CsvTable {
    let mut table = CsvTable::new(&["np", "S2PO_el", "proxies_path_share"]);
    for &np in np_range {
        let server = kappa * alpha;
        let proxies = alpha.powi(np as i32);
        let p = 1.0 - (1.0 - server) * (1.0 - proxies);
        let share = proxies * (1.0 - server) / p;
        table.push_row(vec![
            np.to_string(),
            fmt_num(1.0 / p),
            fmt_num(share),
        ]);
    }
    table
}

/// **ABL-ENT** — key-entropy sweep at fixed attacker strength ω: more
/// entropy stretches every lifetime (the paper: realistic entropies are
/// 16 or 32 bits).
pub fn ablation_entropy(omega: f64, bits_range: &[u32]) -> CsvTable {
    let mut table = CsvTable::new(&["entropy_bits", "alpha", "S1SO", "S1PO", "S0PO"]);
    for &bits in bits_range {
        let chi = (2.0f64).powi(bits as i32);
        let params = AttackParams::new(chi, omega).expect("valid");
        let el = |kind, policy| {
            expected_lifetime(kind, policy, ProbeModel::Broadcast, &params).expect("valid")
        };
        table.push_row(vec![
            bits.to_string(),
            fmt_num(params.alpha()),
            fmt_num(el(SystemKind::S1Pb, Policy::StartupOnly)),
            fmt_num(el(SystemKind::S1Pb, Policy::Proactive)),
            fmt_num(el(SystemKind::S0Smr, Policy::Proactive)),
        ]);
    }
    table
}

/// **PROTO** — protocol-level corroboration: expected lifetimes measured
/// by running the real stacks under real attackers at scaled χ, next to
/// the analytic model at the same parameters.
pub fn protocol_comparison(trials: u64) -> CsvTable {
    use fortress_core::system::SystemClass;
    let mut table = CsvTable::new(&["system", "protocol_el", "analytic_el", "rel_err"]);
    let cases = [
        ("S1SO", SystemClass::S1Pb, Policy::StartupOnly),
        ("S0SO", SystemClass::S0Smr, Policy::StartupOnly),
        ("S1PO", SystemClass::S1Pb, Policy::Proactive),
    ];
    for (i, (label, class, policy)) in cases.into_iter().enumerate() {
        let exp = ProtocolExperiment {
            entropy_bits: 8,
            omega: 8.0,
            max_steps: 2000,
            ..ProtocolExperiment::new(class, policy)
        };
        let est = exp.estimate(trials, 0xbeef + i as u64 * 1000);
        let params = AttackParams::new(256.0, 8.0).expect("valid");
        let kind = match class {
            SystemClass::S0Smr => SystemKind::S0Smr,
            _ => SystemKind::S1Pb,
        };
        let analytic =
            expected_lifetime(kind, policy, ProbeModel::Broadcast, &params).expect("valid");
        let rel = (est.mean - analytic).abs() / analytic;
        table.push_row(vec![
            label.into(),
            fmt_num(est.mean),
            fmt_num(analytic),
            fmt_num(rel),
        ]);
    }
    table
}

/// **OVH** — proxy overhead without intrusions: network hops per answered
/// request in the 1-tier PB system vs the 2-tier FORTRESS system (echoes
/// the Saidane et al. observation that proxy overhead is modest, §2.2).
pub fn proxy_overhead(requests: u64) -> CsvTable {
    use fortress_core::client::{AcceptMode, DirectClient, FortressClient};
    use fortress_core::system::{Stack, StackConfig, SystemClass};
    use fortress_core::wire::WireMsg;

    let mut table = CsvTable::new(&["system", "requests", "ticks_per_request"]);

    // S1: direct PB.
    {
        let mut stack = Stack::new(StackConfig {
            class: SystemClass::S1Pb,
            seed: 1,
            ..StackConfig::default()
        })
        .expect("assembly");
        stack.add_client("bench");
        let mut client = DirectClient::new(
            "bench",
            stack.authority(),
            stack.ns().servers().to_vec(),
            AcceptMode::AnyAuthentic,
        );
        let mut answered = 0u64;
        let mut total_ticks = 0u64;
        for _ in 0..requests {
            let before = stack.network_now();
            let req = client.request(b"PUT k v");
            stack.submit("bench", &req);
            stack.pump();
            for ev in stack.drain_client("bench") {
                if let Some(payload) = ev.payload() {
                    if let WireMsg::SignedReply(reply) = WireMsg::decode(payload) {
                        if client.on_reply(&reply.to_owned()).is_some() {
                            answered += 1;
                        }
                    }
                }
            }
            total_ticks += stack.network_now() - before;
        }
        table.push_row(vec![
            "S1 (direct PB)".into(),
            answered.to_string(),
            fmt_num(total_ticks as f64 / answered.max(1) as f64),
        ]);
    }

    // S2: FORTRESS.
    {
        let mut stack = Stack::new(StackConfig {
            class: SystemClass::S2Fortress,
            seed: 1,
            ..StackConfig::default()
        })
        .expect("assembly");
        stack.add_client("bench");
        let mut client = FortressClient::new("bench", stack.authority(), stack.ns().clone());
        let mut answered = 0u64;
        let mut total_ticks = 0u64;
        for _ in 0..requests {
            let before = stack.network_now();
            let req = client.request(b"PUT k v");
            stack.submit("bench", &req);
            stack.pump();
            for ev in stack.drain_client("bench") {
                if let Some(payload) = ev.payload() {
                    if let WireMsg::ProxyResponse(resp) = WireMsg::decode(payload) {
                        if client.on_response(&resp).ok().flatten().is_some() {
                            answered += 1;
                        }
                    }
                }
            }
            total_ticks += stack.network_now() - before;
        }
        table.push_row(vec![
            "S2 (FORTRESS)".into(),
            answered.to_string(),
            fmt_num(total_ticks as f64 / answered.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_has_all_series_and_ordering() {
        let t = figure1(2, 0.5, 300);
        assert!(t.len() >= 6);
        let csv = t.to_csv();
        for label in ["S0PO", "S2PO", "S1PO", "S1SO", "S0SO"] {
            assert!(csv.contains(label), "missing {label} in {csv}");
        }
    }

    #[test]
    fn figure2_covers_kappa_grid() {
        let t = figure2(1, 0);
        let csv = t.to_csv();
        assert!(csv.contains("kappa_0.0"));
        assert!(csv.contains("kappa_1.0"));
        assert!(csv.contains("S0PO_reference"));
    }

    #[test]
    fn ordering_summary_all_hold() {
        let t = ordering_summary();
        let csv = t.to_csv();
        assert_eq!(csv.matches("true").count(), 4, "{csv}");
        assert!(!csv.contains("false"));
    }

    #[test]
    fn trends_all_hold() {
        let t = trends(1e-3);
        let csv = t.to_csv();
        assert_eq!(csv.matches("true").count(), 4, "{csv}");
    }

    #[test]
    fn probe_ablation_shows_the_flip() {
        let t = ablation_probe_model(1);
        let csv = t.to_csv();
        // Broadcast column true, independent column false on every row.
        for line in csv.lines().skip(1) {
            assert!(line.ends_with("true,false"), "{line}");
        }
    }

    #[test]
    fn period_ablation_is_monotone_for_s0() {
        let t = ablation_period(1e-2, &[1, 2, 4, 8]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn fleet_ablation_monotone_in_np() {
        let t = ablation_fleet(1e-2, 0.0, &[1, 2, 3, 4]);
        let csv = t.to_csv();
        // With kappa = 0 the EL is 1/alpha^np: strictly increasing rows.
        let els: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<f64>().unwrap())
            .collect();
        assert!(els.windows(2).all(|w| w[1] > w[0]), "{els:?}");
    }

    #[test]
    fn entropy_ablation_monotone() {
        let t = ablation_entropy(64.0, &[12, 16, 20]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn overhead_table_renders() {
        let t = proxy_overhead(5);
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("FORTRESS"));
    }
}
