//! Network addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An opaque endpoint address assigned at registration time.
///
/// Addresses are small integers under the hood; the registering transport
/// keeps the name ↔ address mapping for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(u32);

impl Addr {
    /// Constructs an address from its raw index. Exposed for transports in
    /// this workspace; applications should treat addresses as opaque.
    pub fn from_raw(raw: u32) -> Addr {
        Addr(raw)
    }

    /// The raw index.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_format() {
        let a = Addr::from_raw(7);
        assert_eq!(a.raw(), 7);
        assert_eq!(format!("{a}"), "@7");
        assert_eq!(format!("{a:?}"), "Addr(7)");
    }

    #[test]
    fn ordering_and_hash_usable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Addr::from_raw(1));
        set.insert(Addr::from_raw(1));
        set.insert(Addr::from_raw(2));
        assert_eq!(set.len(), 2);
        assert!(Addr::from_raw(1) < Addr::from_raw(2));
    }
}
