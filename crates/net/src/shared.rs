//! A clonable handle sharing one [`Transport`] between several owners.
//!
//! The fleet assembly in `fortress-core` wires N independent fortress
//! groups over **one** network: every group's `Stack` owns its transport
//! by value, so the shared backend is wrapped in [`SharedNet`] — an
//! `Rc<RefCell<T>>` handle that implements [`Transport`] (and
//! [`TrialReset`]) by delegation. Cloning the handle clones the *handle*,
//! not the network; all clones deliver through the same queues, observe
//! the same logical clock, and draw from the same latency stream.
//!
//! `Rc` (not `Arc`) is deliberate: [`Transport`] has no `Send` bound —
//! every Monte-Carlo trial assembles and drives its fleet on a single
//! worker thread, and the trial arena is `thread_local`. A `SharedNet`
//! therefore cannot leak across threads by construction.
//!
//! Borrow discipline: each trait method borrows the inner cell for the
//! duration of one call only, and the inner transport never calls back
//! out, so the `RefCell` cannot double-borrow.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};
use crate::transport::{Transport, TrialReset};

/// A clonable, single-threaded sharing handle over a transport. See the
/// [module docs](self).
pub struct SharedNet<T> {
    inner: Rc<RefCell<T>>,
}

impl<T> SharedNet<T> {
    /// Wraps `net` in a shared handle.
    pub fn new(net: T) -> SharedNet<T> {
        SharedNet { inner: Rc::new(RefCell::new(net)) }
    }

    /// Runs `f` with a direct borrow of the inner transport — for
    /// operations outside the [`Transport`] surface (e.g. reading
    /// backend-specific counters).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// How many handles (including this one) share the inner transport.
    pub fn handle_count(&self) -> usize {
        Rc::strong_count(&self.inner)
    }
}

impl<T> Clone for SharedNet<T> {
    fn clone(&self) -> SharedNet<T> {
        SharedNet { inner: Rc::clone(&self.inner) }
    }
}

impl<T: Transport> Transport for SharedNet<T> {
    fn register(&mut self, name: &str) -> Addr {
        self.inner.borrow_mut().register(name)
    }

    fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        self.inner.borrow_mut().send(from, to, payload);
    }

    fn broadcast(&mut self, from: Addr, targets: &[Addr], payload: Bytes) {
        self.inner.borrow_mut().broadcast(from, targets, payload);
    }

    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>) {
        self.inner.borrow_mut().drain_into(at, out);
    }

    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        self.inner.borrow_mut().drain_closure_count(at)
    }

    fn has_pending(&self, addr: Addr) -> bool {
        self.inner.borrow().has_pending(addr)
    }

    fn step(&mut self) -> bool {
        self.inner.borrow_mut().step()
    }

    fn crash(&mut self, addr: Addr) {
        self.inner.borrow_mut().crash(addr);
    }

    fn restart(&mut self, addr: Addr) {
        self.inner.borrow_mut().restart(addr);
    }

    fn note_malformed(&mut self) {
        self.inner.borrow_mut().note_malformed();
    }

    fn stats(&self) -> NetStats {
        self.inner.borrow().stats()
    }

    fn now(&self) -> u64 {
        self.inner.borrow().now()
    }
}

impl<T: TrialReset> TrialReset for SharedNet<T> {
    fn trial_reset(&mut self, seed: u64, keep_endpoints: usize) {
        self.inner.borrow_mut().trial_reset(seed, keep_endpoints);
    }

    fn endpoint_count(&self) -> usize {
        self.inner.borrow().endpoint_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, SimNet};

    #[test]
    fn clones_share_one_network() {
        let mut a = SharedNet::new(SimNet::new(SimConfig::default()));
        let mut b = a.clone();
        assert_eq!(a.handle_count(), 2);
        let alice = a.register("alice");
        let bob = b.register("bob");
        // A send through one handle arrives at an endpoint registered
        // through the other: there is only one network.
        a.send(alice, bob, Bytes::from_static(b"hi"));
        while a.step() {}
        let mut out = Vec::new();
        b.drain_into(bob, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].payload().unwrap().as_ref(), b"hi");
        assert_eq!(a.stats().delivered, b.stats().delivered);
    }

    #[test]
    fn shared_handle_is_bit_identical_to_direct_use() {
        // The handle adds no behavior: the same script through a bare
        // SimNet and through a SharedNet wrapper produces the same
        // events and counters.
        fn script<T: Transport>(net: &mut T) -> (Vec<NetEvent>, NetStats) {
            let a = net.register("a");
            let b = net.register("b");
            let c = net.register("c");
            net.broadcast(a, &[b, c], Bytes::from_static(b"x"));
            while net.step() {}
            net.crash(b);
            let mut out = Vec::new();
            net.drain_into(c, &mut out);
            net.drain_into(a, &mut out);
            (out, net.stats())
        }
        let cfg = SimConfig { seed: 9, ..SimConfig::default() };
        let (ev_direct, st_direct) = script(&mut SimNet::new(cfg));
        let (ev_shared, st_shared) = script(&mut SharedNet::new(SimNet::new(cfg)));
        assert_eq!(format!("{ev_direct:?}"), format!("{ev_shared:?}"));
        assert_eq!(st_direct, st_shared);
    }

    #[test]
    fn trial_reset_delegates_through_the_handle() {
        let mut net = SharedNet::new(SimNet::new(SimConfig::default()));
        let a = net.register("a");
        let b = net.register("b");
        let _extra = net.register("extra");
        assert_eq!(net.endpoint_count(), 3);
        net.trial_reset(7, 2);
        assert_eq!(net.endpoint_count(), 2);
        // Recycled slot: the next registration reuses the freed address,
        // and the kept endpoints still deliver.
        let again = net.register("extra2");
        net.send(a, b, Bytes::from_static(b"post-reset"));
        while net.step() {}
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1);
        assert_ne!(again, a);
        assert_ne!(again, b);
    }
}
