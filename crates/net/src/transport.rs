//! The transport abstraction both network backends implement.
//!
//! [`Transport`] is the **explicit interface** between protocol drive
//! loops (e.g. `fortress_core::system::Stack`) and the two backends:
//! the deterministic logical-time [`SimNet`](crate::sim::SimNet) and the
//! multi-threaded [`ThreadNet`](crate::threaded::ThreadNet). The trait is
//! object-safe and deliberately small — endpoints, framed byte delivery,
//! crash/restart with observable connection closure, and counters. A
//! drive loop written against `T: Transport` runs unchanged on the
//! simulator in tests and on real threads in the examples.
//!
//! Hot-path contract:
//!
//! * [`Transport::drain_into`] **appends** into a caller-owned buffer, so
//!   a pump loop reuses one `Vec<NetEvent>` allocation across rounds
//!   instead of collecting a fresh vector per endpoint per round.
//! * [`Transport::broadcast`] takes one encoded [`Bytes`] payload and a
//!   pre-built target slice: the payload is encoded once and shared
//!   (cheap `Bytes` clones) across all targets, and the target list can
//!   be cached by the caller instead of re-collected per call.

use bytes::Bytes;

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};

/// A message transport with crash-observable endpoints. See the
/// [module docs](self) for the contract.
pub trait Transport {
    /// Registers a named endpoint and returns its address.
    fn register(&mut self, name: &str) -> Addr;

    /// Sends one framed payload from `from` to `to`.
    fn send(&mut self, from: Addr, to: Addr, payload: Bytes);

    /// Sends one payload to every target except `from` itself, sharing
    /// the payload buffer across targets (no re-encode, no deep copies).
    fn broadcast(&mut self, from: Addr, targets: &[Addr], payload: Bytes) {
        for &to in targets {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    /// Appends every event pending at `at` to `out` (which the caller
    /// clears and reuses across pump rounds).
    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>);

    /// Discards every event pending at `at`, returning how many of them
    /// were [`NetEvent::ConnectionClosed`]. Semantically identical to
    /// draining into a buffer, counting closures and dropping the rest —
    /// which is exactly what the default does — but backends can answer
    /// without materializing (moving) any events, which matters in probe
    /// loops that drain a flood of closure notifications every step.
    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        let mut out = Vec::new();
        self.drain_into(at, &mut out);
        out.iter().filter(|e| e.is_closure()).count() as u64
    }

    /// Whether any event is pending at `addr` right now. Backends that
    /// can answer in O(1) override this so pump loops skip empty
    /// inboxes; the conservative default says `true` (drain to find
    /// out), which is always correct.
    fn has_pending(&self, addr: Addr) -> bool {
        let _ = addr;
        true
    }

    /// Makes delivery progress: advances logical time on the simulator
    /// (returning `true` while traffic is in flight). Eagerly-delivering
    /// transports return whether traffic arrived since the last `step`
    /// instead — and may block briefly (`ThreadNet` parks up to ~1 ms on
    /// repeated idle steps while sender threads are live), so `true`
    /// means "drain again", never specifically "simulated time moved".
    fn step(&mut self) -> bool {
        false
    }

    /// Crashes the endpoint: its inbox is lost and every connected peer
    /// observes a [`NetEvent::ConnectionClosed`].
    fn crash(&mut self, addr: Addr);

    /// Restarts a crashed endpoint with a clean connection table.
    fn restart(&mut self, addr: Addr);

    /// Records that a delivered payload failed envelope decoding — the
    /// consumer (which is the only party that can tell) reports it here
    /// so [`NetStats::malformed`] observes what used to vanish.
    fn note_malformed(&mut self);

    /// Transport counters.
    fn stats(&self) -> NetStats;

    /// The transport's logical clock (0 where there is none).
    fn now(&self) -> u64 {
        0
    }
}

/// Transports that can be rewound and re-seeded between Monte-Carlo
/// trials, so one allocation's worth of buffers serves a whole cell.
///
/// The contract backing the trial arena: after
/// `trial_reset(seed, keep)` the transport must behave **bit-for-bit**
/// like a freshly constructed instance seeded with `seed` whose first
/// `keep` registrations were replayed — same addresses, same RNG
/// stream, same delivery order — while retaining its internal buffer
/// allocations. Registrations past the watermark are forgotten and
/// their slots recycled, so per-trial endpoints (attacker clients)
/// re-register to identical addresses on the next trial.
pub trait TrialReset {
    /// Rewinds to the just-constructed state under `seed`, keeping the
    /// first `keep_endpoints` registrations.
    fn trial_reset(&mut self, seed: u64, keep_endpoints: usize);

    /// Currently registered endpoints — the watermark to capture right
    /// after assembly.
    fn endpoint_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, SimNet};
    use crate::sock::SockNet;
    use crate::threaded::ThreadNet;

    // The behavioural contract itself (round-trip, crash/restart,
    // malformed counting, conservation, closure-count identity) lives in
    // `crate::conformance` and runs against every backend from
    // `tests/conformance.rs`. This module only pins object safety.

    #[test]
    fn trait_is_object_safe() {
        let mut nets: Vec<Box<dyn Transport>> = vec![
            Box::new(SimNet::new(SimConfig::default())),
            Box::new(ThreadNet::new()),
            Box::new(SockNet::tcp()),
        ];
        for net in &mut nets {
            let a = net.register("a");
            let b = net.register("b");
            net.send(a, b, Bytes::from_static(b"x"));
            while net.step() {}
            let mut out = Vec::new();
            net.drain_into(b, &mut out);
            assert_eq!(out.len(), 1);
            assert_eq!(net.stats().delivered, 1);
        }
    }
}
