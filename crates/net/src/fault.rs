//! Deterministic link-fault injection over any [`Transport`].
//!
//! [`FaultyTransport`] is a decorator: it wraps any backend ([`SimNet`]
//! and [`ThreadNet`](crate::threaded::ThreadNet) alike) and applies a
//! [`FaultPlan`] — per-link loss, delay, duplication and scheduled
//! partitions — to every `send` before the inner transport sees it.
//! Protocol drive loops written against `T: Transport` run unchanged;
//! only the stack assembly decides whether the network is clean or
//! degraded.
//!
//! # Determinism contract
//!
//! All fault randomness comes from one private SplitMix64 stream, seeded
//! per trial from a dedicated stream salt ([`FAULT_STREAM`]) — the same
//! stream-splitting convention `fortress_sim::outage::OutageDriver` uses
//! for its outage schedule, so fault draws can never perturb the trial's
//! protocol or adversary RNG streams. Every degraded `send` consumes
//! exactly four draws (loss, delay, duplication, duplicate delay)
//! regardless of which faults actually fire, so the stream position is a
//! pure function of the send count, never of prior fault outcomes.
//!
//! [`FaultPlan::None`] is a **guaranteed byte-identical passthrough**:
//! every trait method forwards straight to the inner transport, the
//! fault stream is never drawn, and no message is ever held — a stack
//! over `FaultyTransport<SimNet>` with `FaultPlan::None` produces
//! bit-for-bit the events, stats and timing of the bare `SimNet`, which
//! is what keeps every existing golden stable.
//!
//! Delayed (and thereby reordered) messages are held in a deterministic
//! [`BinaryHeap`] keyed by `(release_step, seq)`; each [`Transport::step`]
//! call advances the decorator's own clock one step and releases every
//! held message that has come due, in key order, into the inner
//! transport. `step` keeps returning `true` while messages are held, so
//! pump loops that run the transport to quiescence always drain the
//! hold queue.
//!
//! [`SimNet`]: crate::sim::SimNet

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};
use crate::transport::{Transport, TrialReset};

/// Dedicated per-trial stream salt for the fault plan's SplitMix64
/// stream — the fault-axis sibling of `fortress_sim::outage`'s
/// `OUTAGE_STREAM`. Trial drivers derive the stream seed by folding
/// this salt into the trial seed, so the fault schedule is decorrelated
/// from the trial's protocol and outage streams by construction.
pub const FAULT_STREAM: u64 = 0x0000_FA01_7E57;

/// Plain SplitMix64 — counter-based, four ops per draw, and the same
/// finalizer constants as the workspace's trial seeding, so fault draws
/// inherit the seeding contract's decorrelation properties.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn unit(raw: u64) -> f64 {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive) from one raw draw.
    fn in_range(raw: u64, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + raw % (hi - lo + 1)
    }
}

/// A scheduled partition: a recurring window during which the endpoint
/// set is cut in two along a fixed address boundary.
///
/// Endpoints with raw address `< split` form side A, the rest side B.
/// The cut is active during the first `duration` steps of every
/// `period`-step cycle of the decorator's clock. A symmetric cut drops
/// traffic both ways; a one-way (asymmetric) cut drops only A→B — the
/// degraded-uplink shape real WANs produce.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PartitionWindow {
    /// Cycle length in decorator steps (0 disables the schedule).
    pub period: u64,
    /// Steps the cut stays active at the start of each cycle
    /// (`duration >= period` keeps it permanently active).
    pub duration: u64,
    /// Address boundary: raw addresses below this are side A.
    pub split: u32,
    /// Drop only A→B traffic instead of both directions.
    pub oneway: bool,
}

impl PartitionWindow {
    /// Whether the cut is active at decorator step `clock`.
    fn active(&self, clock: u64) -> bool {
        self.period > 0 && self.duration > 0 && clock % self.period < self.duration
    }

    /// Whether a `from → to` message crosses the active cut.
    fn cuts(&self, from: Addr, to: Addr) -> bool {
        let from_a = from.raw() < self.split;
        let to_a = to.raw() < self.split;
        if self.oneway {
            from_a && !to_a
        } else {
            from_a != to_a
        }
    }
}

/// A deterministically slow endpoint: every message into or out of the
/// endpoint with raw address `addr` is held `extra` additional steps on
/// top of whatever jitter the plan draws. The penalty is fixed and keyed
/// purely by address, so it consumes **no RNG draws** — the four-draw
/// stream contract of a degraded `send` is untouched. This is the
/// slow-replica (partial-degradation) failure shape: the node is up and
/// correct, just late to every quorum.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SlowLink {
    /// Raw address of the slow endpoint.
    pub addr: u32,
    /// Extra hold steps applied to every message touching it.
    pub extra: u64,
}

impl SlowLink {
    /// Extra delay this link imposes on a `from → to` message.
    fn penalty(&self, from: Addr, to: Addr) -> u64 {
        if from.raw() == self.addr || to.raw() == self.addr {
            self.extra
        } else {
            0
        }
    }
}

/// The link-fault model a [`FaultyTransport`] applies: the network-tier
/// half of the sweepable fault axis (`fortress_sim` pairs it with a
/// client retry policy to form the full sweep coordinate).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FaultPlan {
    /// No faults: a guaranteed byte-identical passthrough to the inner
    /// transport (see the [module docs](self) for the contract).
    None,
    /// Independently degrade every message.
    Degraded {
        /// Per-message loss probability in `[0, 1]`.
        loss: f64,
        /// Minimum extra hold time in decorator steps.
        delay_min: u64,
        /// Maximum extra hold time in decorator steps; a jittered
        /// (`delay_max > delay_min`) delay is also the reordering
        /// window, since later sends can draw shorter holds.
        delay_max: u64,
        /// Per-message duplication probability in `[0, 1]` (the
        /// duplicate draws its own independent delay).
        dup: f64,
        /// Scheduled symmetric/asymmetric partition, if any.
        partition: Option<PartitionWindow>,
        /// One deterministically slow endpoint, if any (RNG-free).
        slow: Option<SlowLink>,
    },
}

impl FaultPlan {
    /// A pure-loss plan: every message dropped with probability `loss`,
    /// no delay, duplication or partitions.
    pub fn lossy(loss: f64) -> FaultPlan {
        FaultPlan::Degraded {
            loss,
            delay_min: 0,
            delay_max: 0,
            dup: 0.0,
            partition: None,
            slow: None,
        }
    }

    /// Whether this is the passthrough plan.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultPlan::None)
    }

    /// Stable, comma-free label for reports and golden files.
    pub fn label(&self) -> String {
        match *self {
            FaultPlan::None => "none".to_string(),
            FaultPlan::Degraded {
                loss,
                delay_min,
                delay_max,
                dup,
                partition,
                slow,
            } => {
                let mut parts = vec![format!("loss:{loss}")];
                if delay_max > 0 {
                    parts.push(format!("delay:{delay_min}-{delay_max}"));
                }
                if dup > 0.0 {
                    parts.push(format!("dup:{dup}"));
                }
                if let Some(w) = partition {
                    let arrow = if w.oneway { ">" } else { "|" };
                    parts.push(format!("part:{}/{}{}{}", w.period, w.duration, arrow, w.split));
                }
                if let Some(s) = slow {
                    parts.push(format!("slow:{}x{}", s.addr, s.extra));
                }
                parts.join("+")
            }
        }
    }
}

/// A held (delayed) message awaiting its release step. Ordered by
/// `(release, seq)` **inverted**, so the max-heap [`BinaryHeap`] pops the
/// earliest release first — the deterministic reordering structure.
#[derive(Debug)]
struct Held {
    release: u64,
    seq: u64,
    from: Addr,
    to: Addr,
    payload: Bytes,
}

impl PartialEq for Held {
    fn eq(&self, other: &Held) -> bool {
        (self.release, self.seq) == (other.release, other.seq)
    }
}

impl Eq for Held {}

impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Held) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Held {
    fn cmp(&self, other: &Held) -> Ordering {
        // Inverted: the heap's max is the earliest (release, seq).
        (other.release, other.seq).cmp(&(self.release, self.seq))
    }
}

/// The fault-injecting decorator. See the [module docs](self).
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    /// The stream seed the decorator was (re)built with, retained so
    /// [`TrialReset::trial_reset`] can rewind the fault stream too.
    stream_seed: u64,
    rng: SplitMix64,
    /// The decorator's own clock: one step per [`Transport::step`] call.
    clock: u64,
    /// Monotonic tie-break for the hold heap.
    seq: u64,
    held: BinaryHeap<Held>,
    /// Messages this decorator dropped (loss or partition) before the
    /// inner transport saw them — folded into [`NetStats`] by `stats()`.
    injected_drops: u64,
    /// Extra copies this decorator injected.
    injected_dups: u64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`. `stream_seed` seeds the private fault
    /// stream; trial drivers derive it by folding [`FAULT_STREAM`] into
    /// the trial seed (it is never drawn when `plan` is
    /// [`FaultPlan::None`]).
    pub fn new(inner: T, plan: FaultPlan, stream_seed: u64) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan,
            stream_seed,
            rng: SplitMix64::new(stream_seed),
            clock: 0,
            seq: 0,
            held: BinaryHeap::new(),
            injected_drops: 0,
            injected_dups: 0,
        }
    }

    /// Rewinds decorator *and* inner transport for the next trial: the
    /// inner backend is reset under `inner_seed` (keeping the first
    /// `keep_endpoints` registrations), and the decorator's fault stream
    /// is re-seeded with `stream_seed` — the two-seed form trial drivers
    /// need, since the fault stream is derived per trial from
    /// [`FAULT_STREAM`] independently of the stack seed. Equivalent
    /// bit-for-bit to `FaultyTransport::new(fresh_inner, plan,
    /// stream_seed)` with the kept registrations replayed.
    pub fn trial_reset_with(&mut self, inner_seed: u64, stream_seed: u64, keep_endpoints: usize)
    where
        T: TrialReset,
    {
        self.inner.trial_reset(inner_seed, keep_endpoints);
        self.stream_seed = stream_seed;
        self.rng = SplitMix64::new(stream_seed);
        self.clock = 0;
        self.seq = 0;
        self.held.clear();
        self.injected_drops = 0;
        self.injected_dups = 0;
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped transport, mutably.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Messages currently held for delayed release.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Messages this decorator dropped (loss or partition).
    pub fn injected_drops(&self) -> u64 {
        self.injected_drops
    }

    /// Extra message copies this decorator injected.
    pub fn injected_dups(&self) -> u64 {
        self.injected_dups
    }

    /// Holds a message until `release`, or forwards it immediately when
    /// the delay already elapsed.
    fn hold_or_send(&mut self, from: Addr, to: Addr, payload: Bytes, delay: u64) {
        if delay == 0 {
            self.inner.send(from, to, payload);
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.held.push(Held {
            release: self.clock + delay,
            seq,
            from,
            to,
            payload,
        });
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn register(&mut self, name: &str) -> Addr {
        self.inner.register(name)
    }

    fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        let FaultPlan::Degraded {
            loss,
            delay_min,
            delay_max,
            dup,
            partition,
            slow,
        } = self.plan
        else {
            return self.inner.send(from, to, payload);
        };
        // Exactly four draws per send, in fixed order, whatever fires:
        // the stream position depends only on the send count. The slow
        // link's penalty is fixed and keyed by address, never drawn.
        let u_loss = SplitMix64::unit(self.rng.next_u64());
        let delay = SplitMix64::in_range(self.rng.next_u64(), delay_min, delay_max);
        let u_dup = SplitMix64::unit(self.rng.next_u64());
        let dup_delay = SplitMix64::in_range(self.rng.next_u64(), delay_min, delay_max);
        let penalty = slow.map_or(0, |s| s.penalty(from, to));

        if partition.is_some_and(|w| w.active(self.clock) && w.cuts(from, to)) {
            self.injected_drops += 1;
            return;
        }
        if u_loss < loss {
            self.injected_drops += 1;
            return;
        }
        if u_dup < dup {
            self.injected_dups += 1;
            self.hold_or_send(from, to, payload.clone(), dup_delay + penalty);
        }
        self.hold_or_send(from, to, payload, delay + penalty);
    }

    fn broadcast(&mut self, from: Addr, targets: &[Addr], payload: Bytes) {
        if self.plan.is_none() {
            // Passthrough must preserve the inner backend's own
            // broadcast behavior bit-for-bit.
            return self.inner.broadcast(from, targets, payload);
        }
        for &to in targets {
            if to != from {
                self.send(from, to, payload.clone());
            }
        }
    }

    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>) {
        self.inner.drain_into(at, out);
    }

    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        // Held frames live outside the inner inboxes, so delegating is
        // exact: only delivered events can be drained.
        self.inner.drain_closure_count(at)
    }

    fn has_pending(&self, addr: Addr) -> bool {
        // Held (delayed/reordered) frames are not in any inbox until a
        // `step` releases them into the inner transport, so the inner
        // answer is exact.
        self.inner.has_pending(addr)
    }

    fn step(&mut self) -> bool {
        if self.plan.is_none() {
            return self.inner.step();
        }
        self.clock += 1;
        let mut released = false;
        while let Some(h) = self.held.peek() {
            if h.release > self.clock {
                break;
            }
            let h = self.held.pop().expect("peeked entry exists");
            // A receiver that crashed while the message was held is the
            // inner transport's problem (dead-letter / closure), exactly
            // as an in-flight crash is on the bare backend.
            self.inner.send(h.from, h.to, h.payload);
            released = true;
        }
        let inner_progress = self.inner.step();
        inner_progress || released || !self.held.is_empty()
    }

    fn crash(&mut self, addr: Addr) {
        self.inner.crash(addr);
    }

    fn restart(&mut self, addr: Addr) {
        self.inner.restart(addr);
    }

    fn note_malformed(&mut self) {
        self.inner.note_malformed();
    }

    /// Inner counters with the decorator's injected drops folded in:
    /// a decorator-dropped message counts as both `sent` and `dropped`,
    /// so the conservation identity `delivered + dropped + dead_lettered
    /// == sent` keeps holding at quiescence on any backend (duplicates
    /// reach the inner transport as ordinary sends and count there).
    fn stats(&self) -> NetStats {
        let mut stats = self.inner.stats();
        stats.sent += self.injected_drops;
        stats.dropped += self.injected_drops;
        stats
    }

    fn now(&self) -> u64 {
        self.inner.now()
    }
}

impl<T: Transport + TrialReset> TrialReset for FaultyTransport<T> {
    /// Single-seed reset: rewinds the inner backend under `seed` and the
    /// fault stream to the stream seed the decorator currently holds.
    /// Per-trial drivers that re-derive the fault stream should prefer
    /// [`FaultyTransport::trial_reset_with`].
    fn trial_reset(&mut self, seed: u64, keep_endpoints: usize) {
        self.trial_reset_with(seed, self.stream_seed, keep_endpoints);
    }

    fn endpoint_count(&self) -> usize {
        self.inner.endpoint_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, SimNet};
    use crate::threaded::ThreadNet;

    fn payloads(n: u8) -> Vec<Bytes> {
        (0..n).map(|i| Bytes::copy_from_slice(&[i])).collect()
    }

    fn run_quiet<T: Transport>(net: &mut T) {
        while net.step() {}
    }

    /// The passthrough contract: with `FaultPlan::None` the decorator is
    /// byte-identical to the bare backend on a mixed script of sends,
    /// crashes and drains.
    #[test]
    fn none_plan_is_byte_identical_to_bare_simnet() {
        let script = |net: &mut dyn Transport| -> (Vec<NetEvent>, NetStats, u64) {
            let a = net.register("a");
            let b = net.register("b");
            let c = net.register("c");
            for p in payloads(5) {
                net.send(a, b, p);
            }
            net.broadcast(a, &[a, b, c], Bytes::from_static(b"all"));
            while net.step() {}
            net.crash(c);
            net.send(a, c, Bytes::from_static(b"late"));
            while net.step() {}
            let mut out = Vec::new();
            net.drain_into(b, &mut out);
            net.drain_into(a, &mut out);
            (out, net.stats(), net.now())
        };
        let mut bare = SimNet::new(SimConfig { seed: 3, ..SimConfig::default() });
        let mut wrapped = FaultyTransport::new(
            SimNet::new(SimConfig { seed: 3, ..SimConfig::default() }),
            FaultPlan::None,
            0xDEAD_BEEF, // stream seed is irrelevant: never drawn
        );
        assert_eq!(script(&mut bare), script(&mut wrapped));
    }

    /// Reordering without loss or duplication is a permutation: every
    /// payload sent arrives exactly once.
    #[test]
    fn jittered_delay_is_a_permutation() {
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            FaultPlan::Degraded {
                loss: 0.0,
                delay_min: 0,
                delay_max: 9,
                dup: 0.0,
                partition: None,
                slow: None,
            },
            0x5EED,
        );
        let a = net.register("a");
        let b = net.register("b");
        let sent = payloads(50);
        for p in &sent {
            net.send(a, b, p.clone());
        }
        run_quiet(&mut net);
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        let mut got: Vec<u8> = out
            .iter()
            .map(|e| e.payload().expect("all messages")[0])
            .collect();
        assert_eq!(got.len(), 50, "no loss when loss = 0");
        got.sort_unstable();
        let want: Vec<u8> = (0..50).collect();
        assert_eq!(got, want, "no duplication when dup = 0: a permutation");
        assert_eq!(net.stats().delivered, 50);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn certain_loss_drops_everything_and_counts_it() {
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            FaultPlan::lossy(1.0),
            7,
        );
        let a = net.register("a");
        let b = net.register("b");
        for p in payloads(20) {
            net.send(a, b, p);
        }
        run_quiet(&mut net);
        let stats = net.stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 20, "decorator drops fold into NetStats");
        assert_eq!(stats.sent, 20, "conservation: sent covers injected drops");
        assert_eq!(net.injected_drops(), 20);
    }

    #[test]
    fn certain_duplication_doubles_delivery() {
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            FaultPlan::Degraded {
                loss: 0.0,
                delay_min: 0,
                delay_max: 0,
                dup: 1.0,
                partition: None,
                slow: None,
            },
            11,
        );
        let a = net.register("a");
        let b = net.register("b");
        for p in payloads(10) {
            net.send(a, b, p);
        }
        run_quiet(&mut net);
        let stats = net.stats();
        assert_eq!(stats.delivered, 20, "every message delivered twice");
        assert_eq!(net.injected_dups(), 10);
        // Conservation: duplicates count as inner sends.
        assert_eq!(stats.sent, stats.delivered + stats.dropped + stats.dead_lettered);
    }

    #[test]
    fn fixed_delay_holds_messages_for_the_configured_steps() {
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            FaultPlan::Degraded {
                loss: 0.0,
                delay_min: 3,
                delay_max: 3,
                dup: 0.0,
                partition: None,
                slow: None,
            },
            13,
        );
        let a = net.register("a");
        let b = net.register("b");
        net.send(a, b, Bytes::from_static(b"x"));
        assert_eq!(net.held_count(), 1);
        // Two steps: still held (release at clock 3, then one inner hop).
        assert!(net.step());
        assert!(net.step());
        assert_eq!(net.held_count(), 1);
        run_quiet(&mut net);
        assert_eq!(net.held_count(), 0);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn partition_window_cuts_by_direction() {
        // Addresses: a = 0 (side A), b = 1 (side B). Window active on
        // clock 0..10 of every 10-step period — i.e. always.
        let window = PartitionWindow {
            period: 10,
            duration: 10,
            split: 1,
            oneway: true,
        };
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            FaultPlan::Degraded {
                loss: 0.0,
                delay_min: 0,
                delay_max: 0,
                dup: 0.0,
                partition: Some(window),
                slow: None,
            },
            17,
        );
        let a = net.register("a");
        let b = net.register("b");
        net.send(a, b, Bytes::from_static(b"cut"));
        net.send(b, a, Bytes::from_static(b"back"));
        run_quiet(&mut net);
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert!(out.is_empty(), "A→B is cut one-way");
        out.clear();
        net.drain_into(a, &mut out);
        assert_eq!(out.len(), 1, "B→A flows through a one-way cut");
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn degraded_runs_are_reproducible_per_stream_seed() {
        let run = |stream_seed: u64| -> (u64, u64) {
            let mut net = FaultyTransport::new(
                SimNet::new(SimConfig::default()),
                FaultPlan::lossy(0.4),
                stream_seed,
            );
            let a = net.register("a");
            let b = net.register("b");
            for p in payloads(100) {
                net.send(a, b, p);
            }
            run_quiet(&mut net);
            (net.stats().delivered, net.stats().dropped)
        };
        assert_eq!(run(1), run(1), "same stream seed, same fault schedule");
        assert_ne!(run(1), run(2), "distinct streams diverge at 40% loss");
    }

    /// The decorator is backend-generic: the same plan degrades the
    /// eagerly-delivering threaded backend, with drops visible in its
    /// stats.
    #[test]
    fn decorator_degrades_threadnet_too() {
        let mut net = FaultyTransport::new(ThreadNet::new(), FaultPlan::lossy(1.0), 23);
        let a = net.register("a");
        let b = net.register("b");
        for p in payloads(8) {
            net.send(a, b, p);
        }
        run_quiet(&mut net);
        let stats = net.stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 8);
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert!(out.is_empty());
    }

    /// The decorator's arena contract: `trial_reset_with` replays a
    /// fresh decorator (fresh inner + fresh fault stream) bit-for-bit,
    /// including drop/dup schedules and the held-message clock.
    #[test]
    fn trial_reset_with_replays_fresh_decorator_bit_for_bit() {
        let plan = FaultPlan::Degraded {
            loss: 0.2,
            delay_min: 0,
            delay_max: 4,
            dup: 0.1,
            partition: None,
            slow: None,
        };
        let drive = |net: &mut FaultyTransport<SimNet>,
                     a: Addr,
                     b: Addr|
         -> (Vec<NetEvent>, NetStats, u64) {
            for p in payloads(30) {
                net.send(a, b, p);
            }
            run_quiet(net);
            let mut out = Vec::new();
            net.drain_into(b, &mut out);
            (out, net.stats(), net.now())
        };
        let mk = |sim_seed: u64, stream: u64| {
            let mut net = FaultyTransport::new(
                SimNet::new(SimConfig { seed: sim_seed, ..SimConfig::default() }),
                plan,
                stream,
            );
            let a = net.register("a");
            let b = net.register("b");
            (net, a, b)
        };
        let (mut fresh, fa, fb) = mk(5, 77);
        let want = drive(&mut fresh, fa, fb);

        let (mut reused, ra, rb) = mk(3, 99);
        let _ = drive(&mut reused, ra, rb); // dirty schedule, clock, stats
        reused.trial_reset_with(5, 77, 2);
        assert_eq!(reused.endpoint_count(), 2);
        assert_eq!(drive(&mut reused, ra, rb), want);
    }

    #[test]
    fn labels_are_stable_and_comma_free() {
        assert_eq!(FaultPlan::None.label(), "none");
        assert_eq!(FaultPlan::lossy(0.1).label(), "loss:0.1");
        let full = FaultPlan::Degraded {
            loss: 0.05,
            delay_min: 1,
            delay_max: 4,
            dup: 0.02,
            partition: Some(PartitionWindow {
                period: 40,
                duration: 10,
                split: 3,
                oneway: false,
            }),
            slow: None,
        };
        assert_eq!(full.label(), "loss:0.05+delay:1-4+dup:0.02+part:40/10|3");
        assert!(!full.label().contains(','), "labels live inside CSV cells");
        let slowed = FaultPlan::Degraded {
            loss: 0.0,
            delay_min: 0,
            delay_max: 0,
            dup: 0.0,
            partition: None,
            slow: Some(SlowLink { addr: 2, extra: 6 }),
        };
        assert_eq!(slowed.label(), "loss:0+slow:2x6");
    }

    /// The slow link holds every message touching the slow endpoint for
    /// its fixed penalty — in both directions — while traffic between
    /// fast endpoints flows immediately, and no extra RNG is drawn (the
    /// delivery *schedule* of other links is unchanged vs. no slow link).
    #[test]
    fn slow_link_penalizes_only_its_endpoint_and_draws_no_rng() {
        let plan_with = |slow: Option<SlowLink>| FaultPlan::Degraded {
            loss: 0.0,
            delay_min: 0,
            delay_max: 0,
            dup: 0.0,
            partition: None,
            slow,
        };
        let mut net = FaultyTransport::new(
            SimNet::new(SimConfig::default()),
            plan_with(Some(SlowLink { addr: 2, extra: 5 })),
            31,
        );
        let a = net.register("a"); // raw 0
        let b = net.register("b"); // raw 1
        let c = net.register("c"); // raw 2: the slow replica
        net.send(a, b, Bytes::from_static(b"fast"));
        net.send(a, c, Bytes::from_static(b"to-slow"));
        net.send(c, b, Bytes::from_static(b"from-slow"));
        assert_eq!(net.held_count(), 2, "both slow-touching messages held");
        assert!(net.step());
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1, "fast link delivered in one step");
        run_quiet(&mut net);
        out.clear();
        net.drain_into(c, &mut out);
        assert_eq!(out.len(), 1, "slow inbound arrives after the penalty");
        out.clear();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1, "slow outbound arrives after the penalty");

        // RNG-neutrality: with loss active, the drop schedule on the
        // fast link is bit-identical with and without a slow endpoint.
        let run = |slow: Option<SlowLink>| -> u64 {
            let mut net = FaultyTransport::new(
                SimNet::new(SimConfig::default()),
                match plan_with(slow) {
                    FaultPlan::Degraded { partition, slow, .. } => FaultPlan::Degraded {
                        loss: 0.3,
                        delay_min: 0,
                        delay_max: 0,
                        dup: 0.0,
                        partition,
                        slow,
                    },
                    none => none,
                },
                41,
            );
            let a = net.register("a");
            let b = net.register("b");
            let _c = net.register("c");
            for p in payloads(60) {
                net.send(a, b, p);
            }
            run_quiet(&mut net);
            net.stats().dropped
        };
        assert_eq!(
            run(None),
            run(Some(SlowLink { addr: 2, extra: 9 })),
            "slow link must not consume fault-stream draws"
        );
    }
}
