//! The behavioural contract every [`Transport`] backend must satisfy,
//! as a reusable test suite.
//!
//! Three backends (plus the fault decorator) implement [`Transport`];
//! the guarantees drive loops rely on — round-trip delivery, the
//! crash/restart observable, caller-reported malformed counting, the
//! [`NetStats`] conservation identity, and `drain_closure_count`
//! matching the drain-and-filter default bit for bit — are checked
//! here once, generically, instead of re-asserted ad hoc per backend.
//!
//! Each check takes a **factory** so it can build as many fresh
//! instances as it needs; `tests/conformance.rs` instantiates the suite
//! for `SimNet`, `ThreadNet`, `FaultyTransport<SimNet>`, and both
//! `SockNet` families.
//!
//! The assertions are deliberately *semantic*, not byte-level: a
//! simulated network may surface one closure per send into an outage
//! while a kernel transport surfaces one EOF per dead session, so the
//! suite pins "at least one closure, and the books balance" rather
//! than an exact event count that would overfit one backend.

use bytes::Bytes;

use crate::event::NetEvent;
use crate::transport::Transport;

/// Settles a transport: steps until no backend reports progress. For
/// eager backends this returns quickly; for kernel-socket backends it
/// waits out real delivery latency (bounded by the backend's own
/// settle timeout).
pub fn settle<T: Transport>(net: &mut T) {
    while net.step() {}
}

/// Runs every conformance check against fresh instances from `mk`.
/// `label` names the backend in assertion messages.
pub fn check_all<T: Transport>(mut mk: impl FnMut() -> T, label: &str) {
    check_round_trip(&mut mk(), label);
    check_crash_restart(&mut mk(), label);
    check_malformed_counting(&mut mk(), label);
    check_conservation(&mut mk(), label);
    check_drain_closure_count(&mut mk, label);
}

/// Broadcast delivery: every target except the sender receives the
/// payload byte-identically, and the stats agree.
pub fn check_round_trip<T: Transport>(net: &mut T, label: &str) {
    let a = net.register("a");
    let b = net.register("b");
    let c = net.register("c");
    net.broadcast(a, &[a, b, c], Bytes::from_static(b"ping"));
    settle(net);
    let mut out = Vec::new();
    net.drain_into(b, &mut out);
    net.drain_into(c, &mut out);
    assert_eq!(out.len(), 2, "[{label}] both targets hear a broadcast");
    assert!(
        out.iter()
            .all(|e| e.payload().map(|p| p.as_ref()) == Some(b"ping".as_ref())),
        "[{label}] payloads must arrive byte-identical"
    );
    out.clear();
    net.drain_into(a, &mut out);
    assert!(out.is_empty(), "[{label}] broadcast must skip the sender");
    let st = net.stats();
    assert_eq!(st.sent, 2, "[{label}] broadcast counts one send per target");
    assert_eq!(st.delivered, 2, "[{label}] both sends delivered");
}

/// The crash observable the paper's de-randomization attacks hinge on:
/// a peer that exchanged traffic with a crashed endpoint observes a
/// connection closure; sends into the outage dead-letter and bounce a
/// closure back; a restarted endpoint serves again with a clean table.
pub fn check_crash_restart<T: Transport>(net: &mut T, label: &str) {
    let attacker = net.register("attacker");
    let server = net.register("server");
    net.send(attacker, server, Bytes::from_static(b"probe"));
    settle(net);
    let mut out = Vec::new();
    net.drain_into(server, &mut out);
    assert_eq!(out.len(), 1, "[{label}] probe reaches the server");

    net.crash(server);
    settle(net);
    out.clear();
    net.drain_into(attacker, &mut out);
    let closures = out.iter().filter(|e| e.is_closure()).count();
    assert!(
        closures >= 1,
        "[{label}] a connected peer must observe the crash as a closure \
         (saw {closures})"
    );
    assert!(
        out.iter().filter(|e| e.is_closure()).all(|e| e.peer() == server),
        "[{label}] the closure names the crashed endpoint"
    );

    // A send into the outage is dead-lettered and bounces a closure.
    let before = net.stats();
    net.send(attacker, server, Bytes::from_static(b"into the void"));
    settle(net);
    let after = net.stats();
    assert_eq!(
        after.dead_lettered,
        before.dead_lettered + 1,
        "[{label}] sends to a crashed endpoint dead-letter"
    );
    out.clear();
    net.drain_into(attacker, &mut out);
    assert!(
        out.iter().any(|e| e.is_closure() && e.peer() == server),
        "[{label}] the dead-lettered sender is told the connection closed"
    );

    // After restart the endpoint serves again, with a clean table.
    net.restart(server);
    net.send(attacker, server, Bytes::from_static(b"after restart"));
    settle(net);
    out.clear();
    net.drain_into(server, &mut out);
    let delivered: Vec<_> = out.iter().filter_map(NetEvent::payload).collect();
    assert_eq!(delivered.len(), 1, "[{label}] a restarted endpoint receives");
    assert_eq!(delivered[0].as_ref(), b"after restart");

    let st = net.stats();
    assert_eq!(
        st.delivered + st.dropped + st.dead_lettered,
        st.sent,
        "[{label}] conservation must hold across crash/restart: {st:?}"
    );
}

/// Malformed frames are counted where they are detected — by the
/// consumer, reported back through the transport.
pub fn check_malformed_counting<T: Transport>(net: &mut T, label: &str) {
    assert_eq!(net.stats().malformed, 0);
    net.note_malformed();
    net.note_malformed();
    let st = net.stats();
    assert_eq!(st.malformed, 2, "[{label}] malformed reports accumulate");
    assert_eq!(st.sent, 0, "[{label}] malformed counting is orthogonal to sends");
}

/// The books balance at quiescence: every accepted send is delivered,
/// dropped, or dead-lettered — nothing vanishes, even across a crash.
pub fn check_conservation<T: Transport>(net: &mut T, label: &str) {
    let a = net.register("a");
    let b = net.register("b");
    let c = net.register("c");
    for i in 0..8u32 {
        let to = if i % 2 == 0 { b } else { c };
        net.send(a, to, Bytes::from_static(b"load"));
    }
    settle(net);
    net.crash(b);
    settle(net);
    net.send(a, b, Bytes::from_static(b"lost"));
    net.send(c, a, Bytes::from_static(b"still up"));
    settle(net);
    let st = net.stats();
    assert_eq!(st.sent, 10, "[{label}] every send is counted");
    assert_eq!(
        st.delivered + st.dropped + st.dead_lettered,
        st.sent,
        "[{label}] conservation identity violated at quiescence: {st:?}"
    );
}

/// `drain_closure_count` must agree exactly with the default
/// drain-and-filter path on identically prepared instances — backends
/// that answer without materializing events (O(1) counting) cannot
/// change the answer.
pub fn check_drain_closure_count<T: Transport>(mk: &mut impl FnMut() -> T, label: &str) {
    // Prepare the same observable state twice: a peer with one pending
    // message, one crash-induced closure, and one dead-letter closure.
    let prepare = |net: &mut T| {
        let a = net.register("a");
        let s = net.register("s");
        net.send(s, a, Bytes::from_static(b"payload"));
        net.send(a, s, Bytes::from_static(b"probe"));
        settle(net);
        let mut sink = Vec::new();
        net.drain_into(s, &mut sink);
        net.crash(s);
        settle(net);
        net.send(a, s, Bytes::from_static(b"bounce"));
        settle(net);
        a
    };

    let mut via_default = mk();
    let a1 = prepare(&mut via_default);
    // The trait's documented default, spelled out.
    let mut out = Vec::new();
    via_default.drain_into(a1, &mut out);
    let expect = out.iter().filter(|e| e.is_closure()).count() as u64;
    assert!(expect >= 1, "[{label}] the prepared state contains closures");

    let mut via_override = mk();
    let a2 = prepare(&mut via_override);
    let got = via_override.drain_closure_count(a2);
    assert_eq!(
        got, expect,
        "[{label}] drain_closure_count must be bit-identical to \
         drain-and-filter"
    );
    // And the inbox really is discarded: a second call answers zero.
    assert_eq!(
        via_override.drain_closure_count(a2),
        0,
        "[{label}] a drained inbox has no closures left"
    );
}
