//! Deterministic logical-time network simulation.
//!
//! A [`SimNet`] owns every endpoint's inbox and a global event queue ordered
//! by logical delivery time. Tests drive it single-threadedly: `send` now,
//! [`SimNet::advance`] to the next delivery, or [`SimNet::run_until_quiet`]
//! to drain all in-flight traffic. All randomness (latency jitter, drops)
//! comes from one seeded RNG, so every run is reproducible.
//!
//! Crash semantics: [`SimNet::crash`] discards the endpoint's inbox and
//! in-flight traffic to it, and emits [`NetEvent::ConnectionClosed`] to every
//! peer with an open connection (any peer that exchanged a message with the
//! endpoint since its last restart). [`SimNet::restart`] models the forking
//! daemon bringing up a fresh child process: the endpoint is reachable again
//! with a clean connection table.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};

/// Latency model for message delivery.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum Latency {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniformly distributed in `[lo, hi]` ticks.
    Uniform(u64, u64),
}

impl Default for Latency {
    fn default() -> Self {
        Latency::Fixed(1)
    }
}

/// Configuration for a [`SimNet`].
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
    /// Latency model.
    pub latency: Latency,
    /// Probability each message is silently dropped.
    pub drop_rate: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            latency: Latency::default(),
            drop_rate: 0.0,
        }
    }
}

#[derive(Debug)]
struct InFlight {
    due: u64,
    from: Addr,
    to: Addr,
    payload: Bytes,
}

/// A set of peer addresses stored as a bitmask. `insert`/`remove` are
/// single word ops and iteration yields addresses in ascending order
/// without sorting or allocating — the deterministic closure-event order
/// [`SimNet::crash`] needs, on the hot path of every exploit probe.
#[derive(Debug, Default)]
struct ConnSet {
    words: Vec<u64>,
}

impl ConnSet {
    fn insert(&mut self, addr: Addr) {
        let i = addr.raw() as usize;
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    fn remove(&mut self, addr: Addr) {
        let i = addr.raw() as usize;
        if let Some(word) = self.words.get_mut(i / 64) {
            *word &= !(1 << (i % 64));
        }
    }

    /// Zeroes the set, keeping the backing allocation for reuse.
    fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Set members in ascending address order.
    fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some(Addr::from_raw((w * 64) as u32 + b))
            })
        })
    }
}

#[derive(Debug, Default)]
struct EndpointState {
    name: String,
    inbox: VecDeque<NetEvent>,
    /// Peers with an open connection since the last restart.
    connections: ConnSet,
    crashed: bool,
}

/// One scheduled cut in the partition schedule: traffic from `a` to `b`
/// (and, unless `oneway`, from `b` to `a`) is dropped while the logical
/// clock is in `[from_tick, until_tick)`.
#[derive(Debug)]
struct Cut {
    a: HashSet<Addr>,
    b: HashSet<Addr>,
    from_tick: u64,
    until_tick: u64,
    oneway: bool,
}

impl Cut {
    fn severs(&self, now: u64, from: Addr, to: Addr) -> bool {
        if now < self.from_tick || now >= self.until_tick {
            return false;
        }
        (self.a.contains(&from) && self.b.contains(&to))
            || (!self.oneway && self.b.contains(&from) && self.a.contains(&to))
    }
}

/// The deterministic simulated network. See the [module docs](self).
#[derive(Debug)]
pub struct SimNet {
    config: SimConfig,
    rng: StdRng,
    now: u64,
    seq: u64,
    /// Endpoint slots. Only the first `live` are registered; slots past
    /// the watermark are kept after [`SimNet::trial_reset`] so their
    /// buffers can be recycled by the next trial's registrations.
    endpoints: Vec<EndpointState>,
    live: usize,
    /// FIFO delivery queue used for [`Latency::Fixed`]: due times are
    /// non-decreasing in send order (the clock is monotonic), so
    /// `(due, seq)` heap order equals insertion order and a ring buffer
    /// replaces the heap + side map entirely.
    fifo: VecDeque<InFlight>,
    /// Heap + side-map path for [`Latency::Uniform`], where jitter
    /// reorders deliveries.
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    in_flight: HashMap<u64, InFlight>,
    cuts: Vec<Cut>,
    stats: NetStats,
}

impl SimNet {
    /// Creates a network with the given configuration.
    pub fn new(config: SimConfig) -> SimNet {
        SimNet {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            now: 0,
            seq: 0,
            endpoints: Vec::new(),
            live: 0,
            fifo: VecDeque::new(),
            queue: BinaryHeap::new(),
            in_flight: HashMap::new(),
            cuts: Vec::new(),
            stats: NetStats::default(),
        }
    }

    fn fixed_latency(&self) -> bool {
        matches!(self.config.latency, Latency::Fixed(_))
    }

    /// Registers a named endpoint and returns its address.
    pub fn register(&mut self, name: &str) -> Addr {
        let addr = Addr::from_raw(self.live as u32);
        if self.live < self.endpoints.len() {
            // Recycle a slot parked by `trial_reset`: same address, fresh
            // state, no new allocations when the name fits.
            let ep = &mut self.endpoints[self.live];
            ep.name.clear();
            ep.name.push_str(name);
            ep.inbox.clear();
            ep.connections.clear();
            ep.crashed = false;
        } else {
            self.endpoints.push(EndpointState {
                name: name.to_owned(),
                ..EndpointState::default()
            });
        }
        self.live += 1;
        addr
    }

    /// Number of live registered endpoints — the natural `keep_endpoints`
    /// watermark to capture right after assembly.
    pub fn endpoint_count(&self) -> usize {
        self.live
    }

    /// Rewinds the network to its just-constructed state under a fresh
    /// `seed`, keeping the first `keep_endpoints` registrations (their
    /// addresses and names stay valid) and every buffer allocation.
    /// Endpoints registered after the watermark are forgotten; their
    /// slots are recycled by later [`SimNet::register`] calls, which
    /// hand out the same addresses again.
    ///
    /// # Panics
    ///
    /// Panics if `keep_endpoints` exceeds the live registration count.
    pub fn trial_reset(&mut self, seed: u64, keep_endpoints: usize) {
        assert!(
            keep_endpoints <= self.live,
            "watermark beyond live endpoints"
        );
        self.config.seed = seed;
        self.rng = StdRng::seed_from_u64(seed);
        self.now = 0;
        self.seq = 0;
        self.fifo.clear();
        self.queue.clear();
        self.in_flight.clear();
        self.cuts.clear();
        self.stats = NetStats::default();
        for ep in &mut self.endpoints[..self.live] {
            ep.inbox.clear();
            ep.connections.clear();
            ep.crashed = false;
        }
        self.live = keep_endpoints;
    }

    /// The name an endpoint registered under.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not issued by this network.
    pub fn name(&self, addr: Addr) -> &str {
        &self.endpoints[addr.raw() as usize].name
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Transport counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Sends `payload` from `from` to `to`, subject to drops and partitions.
    ///
    /// Sending to a crashed endpoint dead-letters the message and reports
    /// the closed connection back to the sender — exactly what a TCP client
    /// of a crashed server would see.
    ///
    /// # Panics
    ///
    /// Panics if either address was not issued by this network.
    pub fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        assert!((from.raw() as usize) < self.live, "unknown sender");
        assert!((to.raw() as usize) < self.live, "unknown receiver");
        self.stats.sent += 1;

        if self.endpoints[to.raw() as usize].crashed {
            self.stats.dead_lettered += 1;
            self.push_event(from, NetEvent::ConnectionClosed { peer: to, at: self.now });
            return;
        }
        if self.is_partitioned(from, to) {
            self.stats.dropped += 1;
            return;
        }
        if self.config.drop_rate > 0.0 && self.rng.gen::<f64>() < self.config.drop_rate {
            self.stats.dropped += 1;
            return;
        }

        let latency = match self.config.latency {
            Latency::Fixed(l) => l,
            Latency::Uniform(lo, hi) => self.rng.gen_range(lo..=hi),
        };
        let due = self.now + latency.max(1);
        let msg = InFlight { due, from, to, payload };
        if self.fixed_latency() {
            self.fifo.push_back(msg);
        } else {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse((due, seq)));
            self.in_flight.insert(seq, msg);
        }
    }

    /// Advances logical time to the next delivery and delivers every message
    /// due at that instant. Returns `false` when nothing is in flight.
    pub fn advance(&mut self) -> bool {
        if self.fixed_latency() {
            let Some(due) = self.fifo.front().map(|m| m.due) else {
                return false;
            };
            self.now = due;
            while self.fifo.front().is_some_and(|m| m.due == due) {
                let msg = self.fifo.pop_front().expect("peeked");
                self.deliver(msg);
            }
            return true;
        }
        let Some(Reverse((due, _))) = self.queue.peek().copied() else {
            return false;
        };
        self.now = due;
        while let Some(Reverse((t, seq))) = self.queue.peek().copied() {
            if t != due {
                break;
            }
            self.queue.pop();
            if let Some(msg) = self.in_flight.remove(&seq) {
                self.deliver(msg);
            }
        }
        true
    }

    /// Runs [`SimNet::advance`] until no traffic is in flight.
    pub fn run_until_quiet(&mut self) {
        while self.advance() {}
    }

    fn deliver(&mut self, msg: InFlight) {
        let to_state = &mut self.endpoints[msg.to.raw() as usize];
        if to_state.crashed {
            // Crashed while the message was in flight.
            self.stats.dead_lettered += 1;
            self.push_event(msg.from, NetEvent::ConnectionClosed { peer: msg.to, at: self.now });
            return;
        }
        to_state.connections.insert(msg.from);
        to_state.inbox.push_back(NetEvent::Message {
            from: msg.from,
            payload: msg.payload,
            at: msg.due,
        });
        self.stats.delivered += 1;
        // The sender also holds an open connection to the receiver now.
        self.endpoints[msg.from.raw() as usize].connections.insert(msg.to);
    }

    /// Pops the next pending event at `addr`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not issued by this network.
    pub fn recv(&mut self, addr: Addr) -> Option<NetEvent> {
        self.endpoints[addr.raw() as usize].inbox.pop_front()
    }

    /// Drains all pending events at `addr`.
    pub fn drain(&mut self, addr: Addr) -> Vec<NetEvent> {
        self.endpoints[addr.raw() as usize].inbox.drain(..).collect()
    }

    /// Appends all pending events at `addr` to `out` — the batched,
    /// allocation-reusing form of [`SimNet::drain`] the pump loops use.
    pub fn drain_into(&mut self, addr: Addr, out: &mut Vec<NetEvent>) {
        out.extend(self.endpoints[addr.raw() as usize].inbox.drain(..));
    }

    /// Number of pending events at `addr`.
    pub fn pending(&self, addr: Addr) -> usize {
        self.endpoints[addr.raw() as usize].inbox.len()
    }

    /// Discards everything pending at `addr`, returning the number of
    /// [`NetEvent::ConnectionClosed`] events among them — the in-place
    /// form of [`Transport::drain_closure_count`](crate::transport::Transport::drain_closure_count):
    /// no event is moved out of the inbox, it is counted and cleared.
    pub fn drain_closure_count(&mut self, addr: Addr) -> u64 {
        let inbox = &mut self.endpoints[addr.raw() as usize].inbox;
        let n = inbox.iter().filter(|e| e.is_closure()).count() as u64;
        inbox.clear();
        n
    }

    /// Crashes the process at `addr`: its inbox is lost and every connected
    /// peer observes a [`NetEvent::ConnectionClosed`].
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not issued by this network.
    pub fn crash(&mut self, addr: Addr) {
        let idx = addr.raw() as usize;
        if self.endpoints[idx].crashed {
            return;
        }
        self.endpoints[idx].crashed = true;
        self.endpoints[idx].inbox.clear();
        // Steal the connection set so peers can be mutated while iterating.
        // Bit order is ascending — exactly the sorted order the old
        // Vec-collect-and-sort produced — with zero allocation per crash.
        let peers = std::mem::take(&mut self.endpoints[idx].connections);
        for peer in peers.iter() {
            self.push_event(peer, NetEvent::ConnectionClosed { peer: addr, at: self.now });
            // The peer's connection to the crashed node is gone too.
            self.endpoints[peer.raw() as usize].connections.remove(addr);
        }
        let mut peers = peers;
        peers.clear();
        self.endpoints[idx].connections = peers;
    }

    /// Restarts a crashed endpoint with a clean connection table (the
    /// forking daemon brought up a fresh child).
    pub fn restart(&mut self, addr: Addr) {
        let state = &mut self.endpoints[addr.raw() as usize];
        state.crashed = false;
        state.inbox.clear();
        state.connections.clear();
    }

    /// Whether `addr` is currently crashed.
    pub fn is_crashed(&self, addr: Addr) -> bool {
        self.endpoints[addr.raw() as usize].crashed
    }

    /// Schedules a cut separating `side_a` from `side_b` while the
    /// logical clock is in `[from_tick, until_tick)`. A `oneway` cut
    /// drops only `side_a → side_b` traffic (an asymmetric fault);
    /// otherwise both directions are severed. Cuts accumulate: a message
    /// is dropped if *any* active cut severs its direction.
    pub fn schedule_partition(
        &mut self,
        side_a: &[Addr],
        side_b: &[Addr],
        from_tick: u64,
        until_tick: u64,
        oneway: bool,
    ) {
        self.cuts.push(Cut {
            a: side_a.iter().copied().collect(),
            b: side_b.iter().copied().collect(),
            from_tick,
            until_tick,
            oneway,
        });
    }

    /// Removes every scheduled cut, active or future.
    pub fn clear_partitions(&mut self) {
        self.cuts.clear();
    }

    /// Installs a single symmetric partition separating `side_a` from
    /// `side_b`, active immediately and indefinitely. Replaces any
    /// existing schedule.
    #[deprecated(
        since = "0.6.0",
        note = "use `schedule_partition` — partitions are now a schedule of windowed, \
                optionally one-way cuts"
    )]
    pub fn partition(&mut self, side_a: &[Addr], side_b: &[Addr]) {
        self.cuts.clear();
        self.schedule_partition(side_a, side_b, self.now, u64::MAX, false);
    }

    /// Removes the partition.
    #[deprecated(since = "0.6.0", note = "use `clear_partitions`")]
    pub fn heal(&mut self) {
        self.clear_partitions();
    }

    fn is_partitioned(&self, from: Addr, to: Addr) -> bool {
        self.cuts.iter().any(|c| c.severs(self.now, from, to))
    }

    fn push_event(&mut self, to: Addr, event: NetEvent) {
        if event.is_closure() {
            self.stats.closures += 1;
        }
        self.endpoints[to.raw() as usize].inbox.push_back(event);
    }
}

impl crate::transport::Transport for SimNet {
    fn register(&mut self, name: &str) -> Addr {
        SimNet::register(self, name)
    }

    fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        SimNet::send(self, from, to, payload);
    }

    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>) {
        SimNet::drain_into(self, at, out);
    }

    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        SimNet::drain_closure_count(self, at)
    }

    fn has_pending(&self, addr: Addr) -> bool {
        SimNet::pending(self, addr) != 0
    }

    /// One [`SimNet::advance`]: delivers everything due at the next
    /// logical instant.
    fn step(&mut self) -> bool {
        self.advance()
    }

    fn crash(&mut self, addr: Addr) {
        SimNet::crash(self, addr);
    }

    fn restart(&mut self, addr: Addr) {
        SimNet::restart(self, addr);
    }

    fn note_malformed(&mut self) {
        self.stats.malformed += 1;
    }

    fn stats(&self) -> NetStats {
        SimNet::stats(self)
    }

    fn now(&self) -> u64 {
        SimNet::now(self)
    }
}

impl crate::transport::TrialReset for SimNet {
    fn trial_reset(&mut self, seed: u64, keep_endpoints: usize) {
        SimNet::trial_reset(self, seed, keep_endpoints);
    }

    fn endpoint_count(&self) -> usize {
        SimNet::endpoint_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    fn two_nodes() -> (SimNet, Addr, Addr) {
        let mut net = SimNet::new(SimConfig::default());
        let a = net.register("a");
        let s = net.register("s");
        (net, a, s)
    }

    #[test]
    fn basic_delivery() {
        let (mut net, a, s) = two_nodes();
        net.send(a, s, b("hello"));
        assert_eq!(net.pending(s), 0, "not delivered before advance");
        assert!(net.advance());
        let ev = net.recv(s).unwrap();
        assert_eq!(ev.peer(), a);
        assert_eq!(ev.payload().unwrap().as_ref(), b"hello");
        assert!(net.recv(s).is_none());
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn fifo_between_pair_with_fixed_latency() {
        let (mut net, a, s) = two_nodes();
        for i in 0..10u8 {
            net.send(a, s, Bytes::copy_from_slice(&[i]));
        }
        net.run_until_quiet();
        for i in 0..10u8 {
            let ev = net.recv(s).unwrap();
            assert_eq!(ev.payload().unwrap().as_ref(), &[i]);
        }
    }

    #[test]
    fn crash_notifies_connected_peers() {
        let (mut net, a, s) = two_nodes();
        net.send(a, s, b("probe"));
        net.run_until_quiet();
        net.crash(s);
        let ev = net.recv(a).unwrap();
        assert_eq!(ev, NetEvent::ConnectionClosed { peer: s, at: net.now() });
        assert!(net.is_crashed(s));
        assert_eq!(net.stats().closures, 1);
    }

    #[test]
    fn crash_without_connection_is_silent() {
        let (mut net, a, s) = two_nodes();
        net.crash(s);
        assert!(net.recv(a).is_none(), "no connection, no closure event");
    }

    #[test]
    fn send_to_crashed_endpoint_reports_closure() {
        let (mut net, a, s) = two_nodes();
        net.crash(s);
        net.send(a, s, b("probe"));
        let ev = net.recv(a).unwrap();
        assert!(ev.is_closure());
        assert_eq!(net.stats().dead_lettered, 1);
    }

    #[test]
    fn in_flight_message_to_crashing_endpoint_is_dead_lettered() {
        let (mut net, a, s) = two_nodes();
        net.send(a, s, b("probe"));
        net.crash(s); // crashes before delivery
        net.run_until_quiet();
        let ev = net.recv(a).unwrap();
        assert!(ev.is_closure());
    }

    #[test]
    fn restart_clears_connections() {
        let (mut net, a, s) = two_nodes();
        net.send(a, s, b("x"));
        net.run_until_quiet();
        net.crash(s);
        net.drain(a);
        net.restart(s);
        assert!(!net.is_crashed(s));
        // A second crash with no new traffic produces no closure events.
        net.crash(s);
        assert!(net.recv(a).is_none());
    }

    #[test]
    fn double_crash_is_idempotent() {
        let (mut net, a, s) = two_nodes();
        net.send(a, s, b("x"));
        net.run_until_quiet();
        net.crash(s);
        net.crash(s);
        assert_eq!(net.drain(a).len(), 1);
    }

    #[test]
    #[allow(deprecated)] // the single-cut shim must stay green
    fn partition_drops_cross_traffic() {
        let (mut net, a, s) = two_nodes();
        net.partition(&[a], &[s]);
        net.send(a, s, b("x"));
        net.run_until_quiet();
        assert!(net.recv(s).is_none());
        assert_eq!(net.stats().dropped, 1);
        net.heal();
        net.send(a, s, b("y"));
        net.run_until_quiet();
        assert!(net.recv(s).is_some());
    }

    #[test]
    fn scheduled_cuts_window_and_compose() {
        let (mut net, a, s) = two_nodes();
        let c = net.register("c");
        // Symmetric cut active only at tick 0: the send at now = 0 is
        // severed (cut membership is checked at send time).
        net.schedule_partition(&[a], &[s], 0, 1, false);
        net.send(a, s, b("early"));
        net.run_until_quiet();
        assert_eq!(net.pending(s), 0, "cut active at send time");
        // Advance the clock past the window with uncut traffic.
        net.send(a, c, b("tick"));
        net.run_until_quiet();
        assert!(net.now() >= 1);
        net.send(a, s, b("late"));
        net.run_until_quiet();
        assert_eq!(net.pending(s), 1, "cut expired");

        // A one-way cut severs only a→s.
        let t = net.now();
        net.schedule_partition(&[a], &[s], t, u64::MAX, true);
        net.send(a, s, b("blocked"));
        net.send(s, a, b("flows"));
        net.run_until_quiet();
        assert_eq!(net.pending(s), 1, "a→s still only the earlier message");
        assert!(net.drain(a).iter().any(|e| e.payload().is_some()));
        net.clear_partitions();
        net.send(a, s, b("after clear"));
        net.run_until_quiet();
        assert_eq!(net.pending(s), 2);
    }

    #[test]
    fn drop_rate_loses_messages_deterministically() {
        let cfg = SimConfig {
            drop_rate: 0.5,
            seed: 42,
            ..SimConfig::default()
        };
        let mut net = SimNet::new(cfg);
        let a = net.register("a");
        let s = net.register("s");
        for _ in 0..100 {
            net.send(a, s, b("x"));
        }
        net.run_until_quiet();
        let got = net.drain(s).len();
        assert!(got > 20 && got < 80, "got {got}");
        // Reproducibility: same seed, same outcome.
        let mut net2 = SimNet::new(cfg);
        let a2 = net2.register("a");
        let s2 = net2.register("s");
        for _ in 0..100 {
            net2.send(a2, s2, b("x"));
        }
        net2.run_until_quiet();
        assert_eq!(net2.drain(s2).len(), got);
    }

    #[test]
    fn uniform_latency_orders_by_due_time() {
        let cfg = SimConfig {
            latency: Latency::Uniform(1, 50),
            seed: 7,
            ..SimConfig::default()
        };
        let mut net = SimNet::new(cfg);
        let a = net.register("a");
        let s = net.register("s");
        for i in 0..20u8 {
            net.send(a, s, Bytes::copy_from_slice(&[i]));
        }
        net.run_until_quiet();
        let events = net.drain(s);
        assert_eq!(events.len(), 20);
        let mut last = 0;
        for ev in &events {
            if let NetEvent::Message { at, .. } = ev {
                assert!(*at >= last);
                last = *at;
            }
        }
    }

    #[test]
    fn time_advances_monotonically() {
        let (mut net, a, s) = two_nodes();
        assert_eq!(net.now(), 0);
        net.send(a, s, b("x"));
        net.advance();
        let t1 = net.now();
        assert!(t1 > 0);
        net.send(s, a, b("y"));
        net.advance();
        assert!(net.now() > t1);
    }

    #[test]
    fn names_are_kept() {
        let (net, a, s) = two_nodes();
        assert_eq!(net.name(a), "a");
        assert_eq!(net.name(s), "s");
    }

    #[test]
    fn advance_on_idle_returns_false() {
        let (mut net, _, _) = two_nodes();
        assert!(!net.advance());
    }

    /// Drives one full "trial" on a net: registers a late endpoint (as a
    /// per-trial client would), exchanges seeded lossy traffic, crashes
    /// and restarts, and returns everything observable.
    fn drive_trial(net: &mut SimNet, a: Addr, s: Addr) -> (Vec<NetEvent>, NetStats, u64) {
        let c = net.register("client-0");
        for i in 0..20u8 {
            net.send(a, s, Bytes::copy_from_slice(&[i]));
            net.send(c, s, Bytes::copy_from_slice(&[100 + i]));
        }
        net.run_until_quiet();
        net.crash(s);
        net.restart(s);
        net.send(a, s, b("again"));
        net.run_until_quiet();
        let mut seen = net.drain(s);
        seen.extend(net.drain(a));
        seen.extend(net.drain(c));
        (seen, net.stats(), net.now())
    }

    #[test]
    fn trial_reset_replays_a_fresh_network_bit_for_bit() {
        let cfg = SimConfig {
            seed: 11,
            drop_rate: 0.3,
            ..SimConfig::default()
        };
        // Reference: two independent fresh networks, seeds 11 and 99.
        let mut fresh = SimNet::new(cfg);
        let fa = fresh.register("a");
        let fs = fresh.register("s");
        let first = drive_trial(&mut fresh, fa, fs);
        let mut fresh2 = SimNet::new(SimConfig { seed: 99, ..cfg });
        let fa2 = fresh2.register("a");
        let fs2 = fresh2.register("s");
        let second = drive_trial(&mut fresh2, fa2, fs2);

        // Reused: one network, reset between the trials.
        let mut net = SimNet::new(cfg);
        let a = net.register("a");
        let s = net.register("s");
        let watermark = net.endpoint_count();
        assert_eq!(watermark, 2);
        assert_eq!(drive_trial(&mut net, a, s), first);
        net.trial_reset(99, watermark);
        assert_eq!(net.endpoint_count(), 2);
        assert_eq!(net.name(a), "a");
        assert_eq!(
            drive_trial(&mut net, a, s),
            second,
            "reset trial must replay a fresh seed-99 network exactly"
        );
    }
}
