//! The top-level wire-tag registry every FORTRESS message family shares.
//!
//! Every payload that crosses a [`Transport`](crate::transport::Transport)
//! starts with **one tag byte** that names its message family — a
//! [`WireKind`]. Receivers classify a frame with a single
//! [`WireKind::classify`] call and dispatch on the result; there is no
//! ordered try-decode chain anywhere, so the interface a node exposes to
//! the network is exactly the set of kinds it matches on (the explicit
//! resistance interface the survivability literature asks for), and bytes
//! that match no kind are an *observable* outcome
//! ([`NetStats::malformed`](crate::event::NetStats::malformed)), not a
//! silent fall-through.
//!
//! The registry is deliberately sparse and grouped by layer:
//!
//! | tag    | kind                 | defined in             |
//! |--------|----------------------|------------------------|
//! | `0x10` | `ClientRequest`      | `fortress-core`        |
//! | `0x11` | `ProxyResponse`      | `fortress-core`        |
//! | `0x12` | `SignedReply`        | `fortress-replication` |
//! | `0x13` | `Exploit`            | `fortress-obf` (the first byte of its magic prefix) |
//! | `0x20` | `Pb` (sub-tagged)    | `fortress-replication` |
//! | `0x21` | `Smr` (sub-tagged)   | `fortress-replication` |
//!
//! The *typed* envelope over these kinds — `fortress_core::wire::WireMsg`
//! — lives in `fortress-core`, where all the payload types are in scope;
//! this module owns only the tag space, so every crate encodes against
//! one registry and two families can never claim the same first byte.

use crate::codec::CodecError;

/// The message family named by a frame's first byte. See the
/// [module docs](self) for the full registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum WireKind {
    /// A client's service request (broadcast to proxies or servers).
    ClientRequest = 0x10,
    /// A proxy's doubly-signed response to a client.
    ProxyResponse = 0x11,
    /// A server's signed reply (to proxies in S2, to clients in S0/S1).
    SignedReply = 0x12,
    /// A raw exploit payload thrown directly at a process (the tag is the
    /// first byte of `fortress-obf`'s exploit magic prefix).
    Exploit = 0x13,
    /// A primary-backup protocol message (sub-tagged internally).
    Pb = 0x20,
    /// An SMR ordering-protocol message (sub-tagged internally).
    Smr = 0x21,
}

/// Every kind, for exhaustive tests and fuzzers.
pub const ALL_KINDS: [WireKind; 6] = [
    WireKind::ClientRequest,
    WireKind::ProxyResponse,
    WireKind::SignedReply,
    WireKind::Exploit,
    WireKind::Pb,
    WireKind::Smr,
];

impl WireKind {
    /// The kind's tag byte — the first byte of every frame of this kind.
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Maps a tag byte back to its kind, if registered.
    pub const fn from_tag(tag: u8) -> Option<WireKind> {
        match tag {
            0x10 => Some(WireKind::ClientRequest),
            0x11 => Some(WireKind::ProxyResponse),
            0x12 => Some(WireKind::SignedReply),
            0x13 => Some(WireKind::Exploit),
            0x20 => Some(WireKind::Pb),
            0x21 => Some(WireKind::Smr),
            _ => None,
        }
    }

    /// Classifies a frame by its first byte — the single-pass dispatch
    /// entry point. Classification is O(1) and allocation-free; the
    /// caller then runs exactly one family decoder on the full frame.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] for an empty frame,
    /// [`CodecError::BadTag`] for an unregistered tag byte.
    pub fn classify(frame: &[u8]) -> Result<WireKind, CodecError> {
        let Some(&tag) = frame.first() else {
            return Err(CodecError::UnexpectedEnd { field: "wire.tag" });
        };
        WireKind::from_tag(tag).ok_or(CodecError::BadTag {
            message: "WireMsg",
            tag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for kind in ALL_KINDS {
            assert!(seen.insert(kind.tag()), "duplicate tag {:#x}", kind.tag());
            assert_eq!(WireKind::from_tag(kind.tag()), Some(kind));
        }
    }

    #[test]
    fn unregistered_tags_rejected() {
        for tag in 0u8..=255 {
            let registered = ALL_KINDS.iter().any(|k| k.tag() == tag);
            assert_eq!(WireKind::from_tag(tag).is_some(), registered, "tag {tag:#x}");
        }
    }

    #[test]
    fn classify_reads_exactly_the_first_byte() {
        assert_eq!(
            WireKind::classify(&[0x10, 0xff, 0xff]),
            Ok(WireKind::ClientRequest)
        );
        assert_eq!(
            WireKind::classify(&[]),
            Err(CodecError::UnexpectedEnd { field: "wire.tag" })
        );
        assert_eq!(
            WireKind::classify(&[0x77]),
            Err(CodecError::BadTag {
                message: "WireMsg",
                tag: 0x77
            })
        );
    }
}
