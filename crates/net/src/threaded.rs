//! Multi-threaded transport over crossbeam channels.
//!
//! [`ThreadNet`] implements the same [`Transport`] interface as the
//! simulator but with real threads. Endpoints come in two flavors:
//!
//! * [`ThreadNet::register`] returns a [`NetHandle`] owning the inbox
//!   receiver, which can be moved into its own thread — the classic
//!   one-thread-per-node examples.
//! * [`Transport::register`] keeps the receiver inside the bus, so a
//!   single-threaded drive loop (e.g. a generic `Stack<ThreadNet>`) can
//!   batch-drain any endpoint via [`Transport::drain_into`] while other
//!   threads keep sending.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};
use crate::transport::Transport;

/// Base duration of one [`Transport::step`] park while sender threads
/// are live. The first park uses exactly this, so time-stepped drive
/// loops (e.g. `examples/failover.rs`) see no added latency worth
/// naming; each further *consecutive* empty drain doubles the park (see
/// [`ParkBackoff::wait`]) so a long-idle waiter backs off instead of
/// waking 1000×/s for nothing.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// Ceiling of the exponential park backoff. Bounded so a pump loop
/// re-checks its exit condition at a steady cadence even if a
/// notification is missed — a missed wakeup costs at most this long,
/// never an unbounded doubling.
const PARK_CEILING: Duration = Duration::from_millis(16);

/// The park-backoff schedule [`Transport::step`] uses when idle. The
/// defaults ([`PARK_TIMEOUT`] / [`PARK_CEILING`]) suit interactive
/// drive loops; wall-clock harnesses on CI boxes with coarse schedulers
/// can widen both via [`ThreadNet::with_backoff`] instead of relying on
/// compiled-in constants holding for every machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParkBackoff {
    /// First park length (and the granularity of the schedule).
    pub base: Duration,
    /// Clamp on the exponential doubling.
    pub ceiling: Duration,
}

impl Default for ParkBackoff {
    fn default() -> ParkBackoff {
        ParkBackoff { base: PARK_TIMEOUT, ceiling: PARK_CEILING }
    }
}

impl ParkBackoff {
    /// Park duration for the `idle_steps`-th consecutive empty drain:
    /// `base` doubled per extra idle step, clamped to `ceiling`. Pure so
    /// the schedule is unit-testable.
    fn wait(&self, idle_steps: u32) -> Duration {
        let doublings = idle_steps.saturating_sub(1).min(10);
        self.base.saturating_mul(1u32 << doublings).min(self.ceiling)
    }
}

#[derive(Debug)]
struct Registry {
    names: Vec<String>,
    senders: Vec<Sender<NetEvent>>,
    /// Inbox receivers the bus retained (trait-registered endpoints);
    /// `None` where a [`NetHandle`] owns the receiver instead.
    receivers: Vec<Option<Mutex<Receiver<NetEvent>>>>,
    crashed: Vec<bool>,
    /// Connection table: pairs that have exchanged messages.
    connections: Vec<Vec<Addr>>,
    stats: NetStats,
}

/// The park signal [`Transport::step`] waits on, one mutex guarding
/// both fields so the park decision and the facts it depends on cannot
/// race: `arrivals` is the total events ever enqueued bus-wide, and
/// `live_handles` counts [`NetHandle`]s not yet dropped — the only
/// endpoints whose owning threads can still produce traffic. A dropped
/// handle decrements the count *under this lock* and notifies, so a
/// step parked (or about to park) on the condvar re-observes liveness
/// instead of burning the full timeout on traffic that can never come
/// (the missed-wakeup race when the last sender exits between the
/// empty-drain check and the park).
#[derive(Debug, Default)]
struct ParkSignal {
    arrivals: u64,
    live_handles: usize,
}

/// A thread-safe message bus with crash/closure semantics.
///
/// # Example
///
/// ```
/// use fortress_net::threaded::ThreadNet;
/// use bytes::Bytes;
///
/// let net = ThreadNet::new();
/// let client = net.register("client");
/// let server = net.register("server");
/// client.send(server.addr(), Bytes::from_static(b"ping"));
/// let ev = server.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
/// assert_eq!(ev.payload().unwrap().as_ref(), b"ping");
/// ```
#[derive(Clone, Debug)]
pub struct ThreadNet {
    registry: Arc<RwLock<Registry>>,
    /// Park signal (arrival counter + live-handle count), guarded by a
    /// plain std mutex so [`Transport::step`] can park on the condvar
    /// until a sender thread enqueues something — or the last handle
    /// drops. Never locked while the registry lock is held (and vice
    /// versa), so there is no ordering between the two.
    signal: Arc<(StdMutex<ParkSignal>, Condvar)>,
    /// Arrival count this instance last observed in [`Transport::step`].
    /// Per-clone deliberately: each drive loop tracks its own drain
    /// progress.
    seen_arrivals: u64,
    /// Consecutive [`Transport::step`] calls that observed no new
    /// arrivals. Parking starts at the *second* consecutive idle step:
    /// a pump loop's single exit-probe step stays latency-free even
    /// with live sender threads, while a dedicated `loop { step() }`
    /// waiter (two-plus idle steps in a row, the spin pattern the park
    /// replaces) blocks instead of burning CPU.
    idle_steps: u32,
    /// Park-backoff schedule (per clone: each drive loop may tune its
    /// own patience).
    backoff: ParkBackoff,
}

impl ThreadNet {
    /// Creates an empty bus with the default park backoff.
    pub fn new() -> ThreadNet {
        ThreadNet::with_backoff(ParkBackoff::default())
    }

    /// Creates an empty bus with an explicit park-backoff schedule —
    /// the timing knob wall-clock harnesses use to trade idle wakeups
    /// against wakeup latency on machines whose schedulers make the
    /// defaults flaky.
    pub fn with_backoff(backoff: ParkBackoff) -> ThreadNet {
        ThreadNet {
            registry: Arc::new(RwLock::new(Registry {
                names: Vec::new(),
                senders: Vec::new(),
                receivers: Vec::new(),
                crashed: Vec::new(),
                connections: Vec::new(),
                stats: NetStats::default(),
            })),
            signal: Arc::new((StdMutex::new(ParkSignal::default()), Condvar::new())),
            seen_arrivals: 0,
            idle_steps: 0,
            backoff,
        }
    }

    /// Records `count` freshly enqueued events and wakes any parked
    /// [`Transport::step`]. Called after the registry lock is released.
    fn note_arrivals(&self, count: u64) {
        if count == 0 {
            return;
        }
        let (lock, cvar) = &*self.signal;
        lock.lock().unwrap_or_else(|e| e.into_inner()).arrivals += count;
        cvar.notify_all();
    }

    /// Adjusts the live-handle count (`+1` at handle registration, `-1`
    /// at handle drop) and wakes any parked [`Transport::step`] so it
    /// re-evaluates whether parking is still justified. Only handle-
    /// owned endpoints count: their owning threads are the only senders
    /// a drive loop could be waiting on. Crash state deliberately does
    /// not factor in: neither transport gates sends on the *sender's*
    /// crash state (only the destination's), so a crashed-but-held
    /// handle can still produce traffic worth parking for.
    fn note_handles(&self, delta: isize) {
        let (lock, cvar) = &*self.signal;
        let mut signal = lock.lock().unwrap_or_else(|e| e.into_inner());
        signal.live_handles = signal.live_handles.saturating_add_signed(delta);
        cvar.notify_all();
    }

    /// Registers a named endpoint, returning its handle (receiver included).
    pub fn register(&self, name: &str) -> NetHandle {
        let (addr, rx) = self.register_endpoint(name, false);
        self.note_handles(1);
        NetHandle {
            addr,
            rx: rx.expect("receiver kept by the handle"),
            net: self.clone(),
        }
    }

    /// Shared registration: `retain` keeps the receiver in the bus (for
    /// [`Transport::drain_into`]), otherwise it is returned to the caller.
    fn register_endpoint(&self, name: &str, retain: bool) -> (Addr, Option<Receiver<NetEvent>>) {
        let (tx, rx) = unbounded();
        let mut reg = self.registry.write();
        let addr = Addr::from_raw(reg.names.len() as u32);
        reg.names.push(name.to_owned());
        reg.senders.push(tx);
        reg.crashed.push(false);
        reg.connections.push(Vec::new());
        if retain {
            reg.receivers.push(Some(Mutex::new(rx)));
            (addr, None)
        } else {
            reg.receivers.push(None);
            (addr, Some(rx))
        }
    }

    /// Transport counters.
    pub fn stats(&self) -> NetStats {
        self.registry.read().stats
    }

    /// The name an endpoint registered under.
    pub fn name(&self, addr: Addr) -> String {
        self.registry.read().names[addr.raw() as usize].clone()
    }

    /// Marks `addr` crashed and notifies connected peers with
    /// [`NetEvent::ConnectionClosed`].
    ///
    /// Queued-but-unread traffic is discarded for bus-retained endpoints
    /// ([`Transport::register`]), matching the simulator's
    /// crash-loses-the-inbox semantics. For [`NetHandle`] endpoints the
    /// handle *is* the process's inbox — it lives on the endpoint's own
    /// thread, so already-queued events stay readable there (like bytes a
    /// TCP client read into userspace before its peer died); the handle's
    /// owner decides what a crash means for them.
    pub fn crash(&self, addr: Addr) {
        let mut enqueued = 0u64;
        {
            let mut reg = self.registry.write();
            let idx = addr.raw() as usize;
            if reg.crashed[idx] {
                return;
            }
            reg.crashed[idx] = true;
            let peers = std::mem::take(&mut reg.connections[idx]);
            for peer in peers {
                if reg.senders[peer.raw() as usize]
                    .send(NetEvent::ConnectionClosed { peer: addr, at: 0 })
                    .is_ok()
                {
                    reg.stats.closures += 1;
                    enqueued += 1;
                }
                reg.connections[peer.raw() as usize].retain(|p| *p != addr);
            }
            // Drain the crashed endpoint's retained inbox: its process state
            // (and with it any queued traffic) is gone, matching the simulator.
            if let Some(rx) = &reg.receivers[idx] {
                let rx = rx.lock();
                while rx.try_recv().is_ok() {}
            }
        }
        self.note_arrivals(enqueued);
    }

    /// Restarts a crashed endpoint (fresh connections).
    pub fn restart(&self, addr: Addr) {
        let mut reg = self.registry.write();
        let idx = addr.raw() as usize;
        reg.crashed[idx] = false;
        reg.connections[idx].clear();
    }

    /// Whether `addr` is crashed.
    pub fn is_crashed(&self, addr: Addr) -> bool {
        self.registry.read().crashed[addr.raw() as usize]
    }

    fn send_from(&self, from: Addr, to: Addr, payload: Bytes) {
        let mut enqueued = 0u64;
        {
            let mut reg = self.registry.write();
            reg.stats.sent += 1;
            let to_idx = to.raw() as usize;
            if reg.crashed[to_idx] {
                reg.stats.dead_lettered += 1;
                if reg.senders[from.raw() as usize]
                    .send(NetEvent::ConnectionClosed { peer: to, at: 0 })
                    .is_ok()
                {
                    reg.stats.closures += 1;
                    enqueued += 1;
                }
            } else {
                if !reg.connections[to_idx].contains(&from) {
                    reg.connections[to_idx].push(from);
                }
                let from_idx = from.raw() as usize;
                if !reg.connections[from_idx].contains(&to) {
                    reg.connections[from_idx].push(to);
                }
                if reg.senders[to_idx]
                    .send(NetEvent::Message { from, payload, at: 0 })
                    .is_ok()
                {
                    reg.stats.delivered += 1;
                    enqueued += 1;
                }
            }
        }
        self.note_arrivals(enqueued);
    }
}

impl Transport for ThreadNet {
    /// Registers an endpoint whose inbox stays inside the bus, so the
    /// drive loop can batch-drain it with [`Transport::drain_into`].
    fn register(&mut self, name: &str) -> Addr {
        self.register_endpoint(name, true).0
    }

    fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        self.send_from(from, to, payload);
    }

    /// Appends everything currently queued at `at`. Panics if `at` was
    /// registered via [`ThreadNet::register`] (its [`NetHandle`] owns the
    /// receiver) — an assembly bug, not a runtime condition.
    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>) {
        let reg = self.registry.read();
        let rx = reg.receivers[at.raw() as usize]
            .as_ref()
            .expect("endpoint's receiver is owned by a NetHandle, not the bus")
            .lock();
        while let Ok(ev) = rx.try_recv() {
            out.push(ev);
        }
    }

    /// Counts-and-discards without materializing: the channel is
    /// drained event by event straight into a counter, so a probe loop
    /// absorbing a flood of closure notifications never moves the
    /// events through an intermediate `Vec` (the default path's
    /// per-call behaviour this must stay bit-identical to — pinned by
    /// the conformance suite).
    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        let reg = self.registry.read();
        let rx = reg.receivers[at.raw() as usize]
            .as_ref()
            .expect("endpoint's receiver is owned by a NetHandle, not the bus")
            .lock();
        let mut closures = 0u64;
        while let Ok(ev) = rx.try_recv() {
            if ev.is_closure() {
                closures += 1;
            }
        }
        closures
    }

    /// Reports whether traffic arrived since the last `step` — and, on
    /// the second-plus *consecutive* idle step while live sender threads
    /// exist, **parks on a condvar** instead of returning immediately:
    /// a `loop {{ step() }}` waiter driving a stack concurrently with
    /// sender threads blocks until traffic arrives rather than
    /// spin-yielding through empty drains. The park length backs off
    /// exponentially with consecutive empty drains — [`ParkBackoff::base`]
    /// at first, doubling per idle step up to [`ParkBackoff::ceiling`]
    /// (see [`ParkBackoff::wait`]) — and any arrival resets it, so a
    /// briefly idle
    /// loop stays responsive while a long-idle one stops waking
    /// 1000×/s. The first idle step never parks, so a pump loop's
    /// single exit-probe call — and with it every deployment with no
    /// handle-owned endpoints at all — sees no added latency.
    ///
    /// The liveness condition (`live_handles > 0`) is evaluated **under
    /// the same lock** the handle drop mutates, and the drop notifies
    /// the condvar: the last sender exiting between an empty drain and
    /// the park can neither slip past the check unobserved nor leave a
    /// parked step burning the full timeout (the missed-wakeup race
    /// this method used to have when liveness lived behind a separate
    /// lock with a notification-free drop).
    fn step(&mut self) -> bool {
        let (lock, cvar) = &*self.signal;
        let mut signal = lock.lock().unwrap_or_else(|e| e.into_inner());
        if signal.arrivals == self.seen_arrivals
            && self.idle_steps >= 1
            && signal.live_handles > 0
        {
            // Missed-wakeup-safe: arrivals and live_handles are both
            // re-checked under the lock their writers bump them under.
            let (guard, _) = cvar
                .wait_timeout(signal, self.backoff.wait(self.idle_steps))
                .unwrap_or_else(|e| e.into_inner());
            signal = guard;
        }
        let advanced = signal.arrivals != self.seen_arrivals;
        self.seen_arrivals = signal.arrivals;
        self.idle_steps = if advanced { 0 } else { self.idle_steps.saturating_add(1) };
        advanced
    }

    fn crash(&mut self, addr: Addr) {
        ThreadNet::crash(self, addr);
    }

    fn restart(&mut self, addr: Addr) {
        ThreadNet::restart(self, addr);
    }

    fn note_malformed(&mut self) {
        self.registry.write().stats.malformed += 1;
    }

    fn stats(&self) -> NetStats {
        ThreadNet::stats(self)
    }
}

impl Default for ThreadNet {
    fn default() -> Self {
        Self::new()
    }
}

/// An endpoint handle: address, inbox receiver and a cloned bus reference.
#[derive(Debug)]
pub struct NetHandle {
    addr: Addr,
    rx: Receiver<NetEvent>,
    net: ThreadNet,
}

impl NetHandle {
    /// This endpoint's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Sends `payload` to `to`.
    pub fn send(&self, to: Addr, payload: Bytes) {
        self.net.send_from(self.addr, to, payload);
    }

    /// Blocking receive with a timeout; `None` on timeout or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<NetEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<NetEvent> {
        self.rx.try_recv().ok()
    }

    /// The underlying bus (for crash injection in tests/examples).
    pub fn net(&self) -> &ThreadNet {
        &self.net
    }
}

impl Drop for NetHandle {
    /// A dropped handle can never send again: stop counting it as a
    /// live sender thread — under the park-signal lock, with a notify —
    /// so a concurrently parking (or already parked) [`Transport::step`]
    /// re-evaluates immediately instead of waiting out the timeout.
    fn drop(&mut self) {
        self.net.note_handles(-1);
    }
}

/// Maps endpoint names to addresses for assembly-time wiring.
#[derive(Debug, Default, Clone)]
pub struct AddressBook {
    by_name: HashMap<String, Addr>,
}

impl AddressBook {
    /// Creates an empty book.
    pub fn new() -> AddressBook {
        AddressBook::default()
    }

    /// Records `name → addr`.
    pub fn insert(&mut self, name: &str, addr: Addr) {
        self.by_name.insert(name.to_owned(), addr);
    }

    /// Looks up a name.
    pub fn get(&self, name: &str) -> Option<Addr> {
        self.by_name.get(name).copied()
    }

    /// All (name, addr) pairs, sorted by name.
    pub fn entries(&self) -> Vec<(String, Addr)> {
        let mut v: Vec<_> = self.by_name.iter().map(|(n, a)| (n.clone(), *a)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(500);

    #[test]
    fn send_and_receive_across_threads() {
        let net = ThreadNet::new();
        let a = net.register("a");
        let b = net.register("b");
        let b_addr = b.addr();
        let handle = std::thread::spawn(move || {
            let ev = b.recv_timeout(T).expect("message");
            ev.payload().unwrap().to_vec()
        });
        a.send(b_addr, Bytes::from_static(b"over threads"));
        assert_eq!(handle.join().unwrap(), b"over threads");
    }

    #[test]
    fn crash_notifies_peers() {
        let net = ThreadNet::new();
        let a = net.register("a");
        let s = net.register("s");
        a.send(s.addr(), Bytes::from_static(b"x"));
        let _ = s.recv_timeout(T).unwrap();
        net.crash(s.addr());
        let ev = a.recv_timeout(T).unwrap();
        assert!(ev.is_closure());
        assert_eq!(ev.peer(), s.addr());
        assert!(net.is_crashed(s.addr()));
    }

    #[test]
    fn send_to_crashed_returns_closure() {
        let net = ThreadNet::new();
        let a = net.register("a");
        let s = net.register("s");
        net.crash(s.addr());
        a.send(s.addr(), Bytes::from_static(b"x"));
        assert!(a.recv_timeout(T).unwrap().is_closure());
        net.restart(s.addr());
        a.send(s.addr(), Bytes::from_static(b"y"));
        assert!(s.recv_timeout(T).unwrap().payload().is_some());
    }

    #[test]
    fn try_recv_nonblocking() {
        let net = ThreadNet::new();
        let a = net.register("a");
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn names() {
        let net = ThreadNet::new();
        let a = net.register("alice");
        assert_eq!(net.name(a.addr()), "alice");
    }

    #[test]
    fn step_without_live_handles_returns_immediately() {
        let mut net = ThreadNet::new();
        let a = Transport::register(&mut net, "a");
        let b = Transport::register(&mut net, "b");
        // 20 idle steps: a parking implementation would spend >= 19
        // park timeouts here; generous headroom absorbs CI preemption.
        let start = std::time::Instant::now();
        for _ in 0..20 {
            assert!(!net.step(), "no traffic, nothing to park for");
        }
        assert!(
            start.elapsed() < 10 * PARK_TIMEOUT,
            "bus-retained-only deployments must not park"
        );
        Transport::send(&mut net, a, b, Bytes::from_static(b"x"));
        assert!(net.step(), "new traffic must be reported");
        assert!(!net.step(), "already observed");
    }

    #[test]
    fn step_parks_until_a_sender_thread_delivers() {
        let mut net = ThreadNet::new();
        let b = Transport::register(&mut net, "b");
        let sender = net.register("sender"); // handle-owned: a live sender thread
        let thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            sender.send(b, Bytes::from_static(b"late"));
        });
        // A parking drive loop: far fewer iterations than a spin would
        // take, and it still observes the late delivery promptly.
        let mut polls = 0u32;
        let woke = loop {
            polls += 1;
            if net.step() {
                break true;
            }
            if polls > 500 {
                break false;
            }
        };
        thread.join().unwrap();
        // A spinning step would exhaust the 500-poll cap in well under a
        // millisecond — long before the ~15ms send — so `woke` itself is
        // the spin detector, with no load-sensitive poll-count bound.
        assert!(woke, "the late send must wake a parked step");
        let _ = polls;
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn dropped_handles_do_not_justify_parking() {
        let mut net = ThreadNet::new();
        let _b = Transport::register(&mut net, "b");
        let h = net.register("h");
        drop(h); // sender thread finished and released its handle
        // 20 idle steps: every one from the second on would park if the
        // dropped handle still counted as a live sender; generous
        // headroom absorbs CI preemption.
        let start = std::time::Instant::now();
        for _ in 0..20 {
            assert!(!net.step());
        }
        assert!(
            start.elapsed() < 10 * PARK_TIMEOUT,
            "a dropped handle cannot produce traffic; step must not park"
        );
    }

    /// The missed-wakeup race: a sender thread whose handle exits
    /// between a step's liveness check and its park must not leave the
    /// drive loop burning full park timeouts. Liveness is re-checked
    /// under the signal lock and every handle drop notifies, so a
    /// parked (or about-to-park) step re-evaluates within the churn
    /// interval instead of sleeping out [`PARK_TIMEOUT`]. Under the old
    /// separate-lock, notification-free drop, each of the 600 steps
    /// below parks the full 1 ms (the churn keeps the stale liveness
    /// check true, and nothing ever notifies) — ~600 ms, reliably 2×
    /// over the bound; with the fix the drops themselves wake the
    /// stepper (~100 µs per step, 3–5× under it), so the bound holds a
    /// wide margin on both sides even when CI preemption stalls the
    /// churner for a few park timeouts.
    #[test]
    fn handle_churn_cannot_park_steps_past_the_drop() {
        let mut net = ThreadNet::new();
        let _b = Transport::register(&mut net, "b");
        assert!(!net.step(), "prime the idle counter");
        let churn_net = net.clone();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let (started_tx, started_rx) = std::sync::mpsc::channel();
        let churner = std::thread::spawn(move || {
            let mut i = 0u32;
            while !stop_flag.load(std::sync::atomic::Ordering::Relaxed) {
                let handle = churn_net.register(&format!("churn-{i}"));
                if i == 0 {
                    let _ = started_tx.send(());
                }
                std::thread::sleep(Duration::from_micros(100));
                drop(handle); // the last live sender exits — mid-park
                i += 1;
            }
        });
        // Step only once the churn is live, so the loop really races
        // parks against handle drops instead of sprinting through an
        // empty bus.
        started_rx.recv().expect("churner must start");
        let start = std::time::Instant::now();
        for _ in 0..600 {
            net.step();
        }
        let elapsed = start.elapsed();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        churner.join().unwrap();
        assert!(
            elapsed < 300 * PARK_TIMEOUT,
            "steps parked past handle drops ({elapsed:?} for 600 steps) — \
             the drop must wake or preempt the park"
        );
    }

    #[test]
    fn crashed_but_held_handles_still_park_and_their_sends_wake() {
        // Neither transport gates sends on the sender's crash state, so
        // a crashed-but-held handle is still a live traffic source: step
        // keeps parking for it, and its sends wake the parked stepper.
        let mut net = ThreadNet::new();
        let b = Transport::register(&mut net, "b");
        let h = net.register("h");
        net.crash(h.addr());
        let thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            h.send(b, Bytes::from_static(b"still here"));
        });
        let mut polls = 0u32;
        let woke = loop {
            polls += 1;
            if net.step() {
                break true;
            }
            if polls > 500 {
                break false;
            }
        };
        thread.join().unwrap();
        assert!(woke, "the crashed-but-held handle's send must be seen");
        let _ = polls;
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1);
    }

    /// The backoff schedule is pure: base on the first park, doubling
    /// per consecutive empty drain, clamped at the ceiling — and immune
    /// to shift overflow at absurd idle counts.
    #[test]
    fn park_backoff_doubles_and_is_bounded() {
        let b = ParkBackoff::default();
        assert_eq!(b.base, PARK_TIMEOUT);
        assert_eq!(b.ceiling, PARK_CEILING);
        assert_eq!(b.wait(1), PARK_TIMEOUT);
        assert_eq!(b.wait(2), 2 * PARK_TIMEOUT);
        assert_eq!(b.wait(3), 4 * PARK_TIMEOUT);
        assert_eq!(b.wait(5), PARK_CEILING);
        assert_eq!(b.wait(100), PARK_CEILING);
        assert_eq!(b.wait(u32::MAX), PARK_CEILING);
        // 0 never reaches the park (the first idle step returns
        // immediately), but the function stays total.
        assert_eq!(b.wait(0), PARK_TIMEOUT);
    }

    /// A custom schedule is honored verbatim: a wider base and ceiling
    /// shift the whole curve without changing its shape.
    #[test]
    fn park_backoff_is_configurable() {
        let wide = ParkBackoff {
            base: Duration::from_millis(4),
            ceiling: Duration::from_millis(40),
        };
        assert_eq!(wide.wait(1), Duration::from_millis(4));
        assert_eq!(wide.wait(3), Duration::from_millis(16));
        assert_eq!(wide.wait(100), Duration::from_millis(40));
        // The constructor threads the schedule through to the instance
        // (and its clones — each drive loop keeps its own copy).
        let net = ThreadNet::with_backoff(wide);
        assert_eq!(net.backoff, wide);
        assert_eq!(net.clone().backoff, wide);
    }

    /// Backed-off parks are still wakeable: after enough idle steps to
    /// reach the ceiling, a sender's delivery must interrupt the park
    /// rather than sleep out the full [`PARK_CEILING`].
    #[test]
    fn late_sends_wake_a_backed_off_park() {
        let mut net = ThreadNet::new();
        let b = Transport::register(&mut net, "b");
        let sender = net.register("sender");
        // Drive to the backoff ceiling: each consecutive empty drain
        // doubles the park, so a handful of steps suffice.
        for _ in 0..8 {
            assert!(!net.step());
        }
        let thread = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            sender.send(b, Bytes::from_static(b"wake up"));
        });
        let start = std::time::Instant::now();
        let mut polls = 0u32;
        let woke = loop {
            polls += 1;
            if net.step() {
                break true;
            }
            if polls > 500 {
                break false;
            }
        };
        thread.join().unwrap();
        assert!(woke, "the send must wake the backed-off park");
        // Generous bound: the ~5ms send plus at most one full-ceiling
        // park plus CI preemption headroom — but far under what 500
        // ceiling-length timeouts would take.
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "a backed-off park slept past the wake ({:?})",
            start.elapsed()
        );
        let mut out = Vec::new();
        net.drain_into(b, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn address_book() {
        let mut book = AddressBook::new();
        book.insert("p0", Addr::from_raw(3));
        assert_eq!(book.get("p0"), Some(Addr::from_raw(3)));
        assert_eq!(book.get("p1"), None);
        assert_eq!(book.entries().len(), 1);
    }
}
