//! Minimal binary codec helpers shared by every protocol's wire format.
//!
//! Messages in this workspace are hand-encoded (no external format crate):
//! little-endian fixed-width integers and length-prefixed byte strings. The
//! [`Writer`]/[`Reader`] pair keeps the per-message `encode`/`decode`
//! implementations short and uniform, and `Reader` is fully bounds-checked
//! so malformed (or adversarial) bytes produce [`CodecError`], never a
//! panic.

use std::error::Error;
use std::fmt;

/// Errors from decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Fewer bytes were available than the field required.
    UnexpectedEnd {
        /// What was being read.
        field: &'static str,
    },
    /// A tag byte did not match any known variant.
    BadTag {
        /// The message type being decoded.
        message: &'static str,
        /// The unknown tag.
        tag: u8,
    },
    /// A length prefix exceeded the remaining buffer.
    BadLength {
        /// What was being read.
        field: &'static str,
        /// The claimed length.
        len: usize,
    },
    /// Bytes declared as UTF-8 were not.
    BadUtf8 {
        /// What was being read.
        field: &'static str,
    },
    /// The buffer had bytes left over after a complete decode.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd { field } => write!(f, "unexpected end reading {field}"),
            CodecError::BadTag { message, tag } => write!(f, "unknown tag {tag} for {message}"),
            CodecError::BadLength { field, len } => write!(f, "length {len} too large for {field}"),
            CodecError::BadUtf8 { field } => write!(f, "invalid utf-8 in {field}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl Error for CodecError {}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a writer that starts with a message tag byte.
    pub fn tagged(tag: u8) -> Writer {
        Writer::tagged_reusing(tag, Vec::new())
    }

    /// Creates a tagged writer that reuses `buf`'s allocation (clearing
    /// any contents). [`Writer::finish`] hands the buffer back, so an
    /// encode hot path can cycle one allocation across messages.
    pub fn tagged_reusing(tag: u8, mut buf: Vec<u8>) -> Writer {
        buf.clear();
        let mut w = Writer { buf };
        w.put_u8(tag);
        w
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u8(u8::from(v))
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked decoder.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the buffer was fully consumed.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd { field });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when the buffer is exhausted.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than 4 bytes remain.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] when fewer than 8 bytes remain.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `bool` byte.
    ///
    /// # Errors
    ///
    /// As for [`Reader::u8`].
    pub fn bool(&mut self, field: &'static str) -> Result<bool, CodecError> {
        Ok(self.u8(field)? != 0)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] when the prefix exceeds the remaining
    /// buffer; [`CodecError::UnexpectedEnd`] when truncated.
    pub fn bytes(&mut self, field: &'static str) -> Result<Vec<u8>, CodecError> {
        Ok(self.bytes_ref(field)?.to_vec())
    }

    /// Reads a length-prefixed byte string as a **borrowed** slice of the
    /// input — the zero-copy form the hot decode paths use.
    ///
    /// # Errors
    ///
    /// As for [`Reader::bytes`].
    pub fn bytes_ref(&mut self, field: &'static str) -> Result<&'a [u8], CodecError> {
        let len = self.u32(field)? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength { field, len });
        }
        self.take(len, field)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As for [`Reader::bytes`], plus [`CodecError::BadUtf8`].
    pub fn str(&mut self, field: &'static str) -> Result<String, CodecError> {
        Ok(self.str_ref(field)?.to_owned())
    }

    /// Reads a length-prefixed UTF-8 string as a **borrowed** `&str`.
    ///
    /// # Errors
    ///
    /// As for [`Reader::str`].
    pub fn str_ref(&mut self, field: &'static str) -> Result<&'a str, CodecError> {
        let raw = self.bytes_ref(field)?;
        std::str::from_utf8(raw).map_err(|_| CodecError::BadUtf8 { field })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = Writer::tagged(7);
        w.put_u8(1)
            .put_u32(0xdead_beef)
            .put_u64(0x0123_4567_89ab_cdef)
            .put_bool(true)
            .put_bytes(b"raw")
            .put_str("text");
        let buf = w.finish();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("tag").unwrap(), 7);
        assert_eq!(r.u8("a").unwrap(), 1);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), 0x0123_4567_89ab_cdef);
        assert!(r.bool("d").unwrap());
        assert_eq!(r.bytes("e").unwrap(), b"raw");
        assert_eq!(r.str("f").unwrap(), "text");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.put_u64(5);
        let buf = w.finish();
        let mut r = Reader::new(&buf[..5]);
        assert_eq!(
            r.u64("x"),
            Err(CodecError::UnexpectedEnd { field: "x" })
        );
    }

    #[test]
    fn oversized_length_prefix_errors() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes, provides none
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.bytes("x"),
            Err(CodecError::BadLength { field: "x", len: 1000 })
        );
    }

    #[test]
    fn bad_utf8_errors() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.str("s"), Err(CodecError::BadUtf8 { field: "s" }));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.u8("a").unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn display_messages() {
        for e in [
            CodecError::UnexpectedEnd { field: "f" },
            CodecError::BadTag { message: "m", tag: 9 },
            CodecError::BadLength { field: "f", len: 3 },
            CodecError::BadUtf8 { field: "f" },
            CodecError::TrailingBytes { remaining: 2 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn empty_bytes_and_strings() {
        let mut w = Writer::new();
        w.put_bytes(b"").put_str("");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes("b").unwrap(), Vec::<u8>::new());
        assert_eq!(r.str("s").unwrap(), "");
        r.expect_end().unwrap();
    }
}
