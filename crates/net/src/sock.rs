//! Real-kernel-socket transport: the third [`Transport`] backend.
//!
//! [`SockNet`] drives the identical `Stack` assembly and wire envelope
//! end-to-end through the operating system: every endpoint owns a real
//! listening socket (TCP on loopback or a Unix-domain socket, selected
//! by [`SockKind`]), sends open real connections, and the crash
//! observable the de-randomization attackers rely on — "a process crash
//! … results in the closure of the TCP connection" — is produced by the
//! kernel itself: [`Transport::crash`] closes the endpoint's sockets and
//! peers learn of it by reading EOF, not by an in-process notification.
//!
//! # Reactor
//!
//! All sockets are non-blocking; a small hand-rolled readiness pass
//! ([`Transport::step`]) accepts pending connections, flushes queued
//! writes, reads and reassembles frames, and polls idle connections for
//! EOF. The pass is single-threaded and owned by the drive loop, exactly
//! like `SimNet` — no background threads, no epoll dependency (the
//! offline-shim constraint), just `std::net` + `WouldBlock`.
//!
//! # Framing
//!
//! A connection starts with a fixed 20-byte hello (`sender addr`,
//! `connection id`, `sender epoch`) identifying the dialing endpoint;
//! after that every [`WireKind`](crate::wire::WireKind) envelope is
//! framed with a little-endian `u32` length prefix. Connections are
//! unidirectional: replies flow over the receiver's own connection back,
//! which is what lets an idle read on an outgoing connection mean
//! exactly one thing — the peer is gone.
//!
//! # Accounting
//!
//! The [`NetStats`] conservation identity (`delivered + dropped +
//! dead_lettered == sent` at quiescence) is kept exact across real
//! crashes: each outgoing connection counts frames queued and frames
//! fully flushed to the kernel, each accepted connection counts frames
//! parsed, and [`Transport::crash`] settles the difference — bytes that
//! died unread in a kernel buffer are dead-lettered at crash time, while
//! bytes the kernel will still deliver (a graceful close flushes them)
//! are left to be counted on arrival.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::addr::Addr;
use crate::event::{NetEvent, NetStats};
use crate::transport::Transport;

/// Which kernel socket family a [`SockNet`] runs over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockKind {
    /// TCP over 127.0.0.1 (an ephemeral port per endpoint).
    Tcp,
    /// Unix-domain stream sockets in a per-instance temp directory.
    #[cfg(unix)]
    Uds,
}

impl SockKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SockKind::Tcp => "tcp",
            #[cfg(unix)]
            SockKind::Uds => "uds",
        }
    }
}

/// Reactor timing knobs — configurable so CI boxes with coarse
/// schedulers stay green (see the loadgen's matching flags).
#[derive(Clone, Copy, Debug)]
pub struct SockTiming {
    /// Sleep between readiness passes while frames are known to be in
    /// flight but nothing progressed this pass.
    pub poll_interval: Duration,
    /// How long [`Transport::step`] keeps re-polling for in-flight
    /// frames before giving up the round (a safety valve, not a normal
    /// exit: on loopback, queued bytes become readable almost
    /// immediately).
    pub settle_timeout: Duration,
}

impl Default for SockTiming {
    fn default() -> SockTiming {
        SockTiming {
            poll_interval: Duration::from_micros(200),
            settle_timeout: Duration::from_secs(5),
        }
    }
}

/// Hello preamble: sender address, connection id, sender epoch.
const HELLO_LEN: usize = 4 + 8 + 8;
/// Defensive cap on a single frame (the envelope never comes close).
const MAX_FRAME: usize = 16 * 1024 * 1024;
/// Run a global accept pass after this many connects between steps, so
/// a burst of dials from one drive loop cannot overflow a listener
/// backlog before the reactor runs again.
const ACCEPTS_EVERY: u32 = 64;
/// Consecutive empty readiness passes after which the settle wait in
/// [`Transport::step`] concludes the kernel is quiescent and exits
/// early — in-flight counters can stay nonzero forever when a frame
/// dies unparseable (its connection is killed without crediting
/// delivery), and burning the full [`SockTiming::settle_timeout`] on
/// every such step turns a fixed safety valve into a per-step tax. At
/// the default 200µs poll interval this is ~10ms of observed silence,
/// three orders of magnitude above loopback delivery latency.
const SETTLE_IDLE_POLLS: u32 = 50;

/// Distinguishes concurrently-living [`SockNet`] instances in one
/// process (Unix socket directory names).
static INSTANCES: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Uds(s) => s.write(buf),
        }
    }
}

/// Where peers dial an endpoint right now (refreshed on restart).
#[derive(Clone, Debug)]
enum Target {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Uds(PathBuf),
}

/// One outgoing connection (this endpoint dialing `to`).
#[derive(Debug)]
struct OutConn {
    to: u32,
    /// The destination's epoch when dialed; a restarted destination has
    /// a higher epoch and gets a fresh connection.
    peer_epoch: u64,
    conn_id: u64,
    stream: Stream,
    /// Unwritten suffix of the byte stream (`wpos..` is pending).
    wbuf: Vec<u8>,
    wpos: usize,
    /// Total bytes ever flushed into the kernel.
    bytes_flushed: u64,
    /// Cumulative end offsets (in flushed-byte space) of queued frames.
    frame_ends: VecDeque<u64>,
    /// Total bytes ever appended (hello + frames).
    bytes_appended: u64,
    /// Frames queued on this connection.
    sent: u64,
    /// Frames whose last byte reached the kernel.
    fully_flushed: u64,
    /// Crash accounting already settled this connection.
    accounted: bool,
    dead: bool,
}

impl OutConn {
    fn append(&mut self, bytes: &[u8], is_frame: bool) {
        self.wbuf.extend_from_slice(bytes);
        self.bytes_appended += bytes.len() as u64;
        if is_frame {
            self.sent += 1;
            self.frame_ends.push_back(self.bytes_appended);
        }
    }

    /// Writes as much pending data as the kernel accepts. Returns
    /// whether any bytes moved; marks the connection dead on a hard
    /// write error.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() && !self.dead {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                }
                Ok(n) => {
                    self.wpos += n;
                    self.bytes_flushed += n as u64;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        while self
            .frame_ends
            .front()
            .is_some_and(|&end| end <= self.bytes_flushed)
        {
            self.frame_ends.pop_front();
            self.fully_flushed += 1;
        }
        progressed
    }

    /// Polls the (write-only) connection for EOF/reset — the kernel's
    /// crash observable. Any readable data is discarded: peers never
    /// send on a connection they accepted.
    fn poll_eof(&mut self) {
        let mut scratch = [0u8; 64];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }
}

/// One accepted connection (a peer dialing this endpoint).
#[derive(Debug)]
struct InConn {
    stream: Stream,
    rbuf: Vec<u8>,
    /// `(peer addr, peer epoch)` once the hello has been parsed.
    peer: Option<(u32, u64)>,
    conn_id: u64,
    /// Frames parsed and pushed to the inbox.
    delivered: u64,
    dead: bool,
}

#[derive(Debug)]
struct Endpoint {
    name: String,
    listener: Option<Listener>,
    target: Option<Target>,
    crashed: bool,
    /// Bumped on every restart; connections are epoch-scoped.
    epoch: u64,
    inbox: VecDeque<NetEvent>,
    out: Vec<OutConn>,
    inc: Vec<InConn>,
    /// `(peer, peer epoch)` sessions whose closure was already surfaced,
    /// so the two halves of one dead session yield one closure event.
    closures_seen: HashSet<(u32, u64)>,
}

/// A [`Transport`] over real kernel sockets. See the [module
/// docs](self) for the reactor, framing and accounting contracts.
#[derive(Debug)]
pub struct SockNet {
    kind: SockKind,
    timing: SockTiming,
    endpoints: Vec<Endpoint>,
    stats: NetStats,
    /// Unix socket directory (removed on drop).
    dir: Option<PathBuf>,
    next_conn_id: u64,
    /// Events enqueued outside a readiness pass (dead-letter closures),
    /// reported by the next [`Transport::step`].
    dirty: bool,
    connects_since_accept: u32,
}

impl SockNet {
    /// A transport over TCP loopback sockets.
    ///
    /// # Panics
    ///
    /// Never — TCP needs no filesystem setup; failures surface at
    /// [`Transport::register`] (bind) time.
    pub fn tcp() -> SockNet {
        SockNet::with_timing(SockKind::Tcp, SockTiming::default())
    }

    /// A transport over Unix-domain sockets in a fresh temp directory.
    ///
    /// # Panics
    ///
    /// Panics if the socket directory cannot be created.
    #[cfg(unix)]
    pub fn uds() -> SockNet {
        SockNet::with_timing(SockKind::Uds, SockTiming::default())
    }

    /// A transport with explicit reactor timing (CI boxes with coarse
    /// schedulers raise `settle_timeout`; latency rigs shrink
    /// `poll_interval`).
    ///
    /// # Panics
    ///
    /// Panics if the Unix socket directory cannot be created.
    pub fn with_timing(kind: SockKind, timing: SockTiming) -> SockNet {
        let dir = match kind {
            SockKind::Tcp => None,
            #[cfg(unix)]
            SockKind::Uds => {
                let dir = std::env::temp_dir().join(format!(
                    "fortress-sock-{}-{}",
                    std::process::id(),
                    INSTANCES.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir).expect("create unix socket directory");
                Some(dir)
            }
        };
        SockNet {
            kind,
            timing,
            endpoints: Vec::new(),
            stats: NetStats::default(),
            dir,
            next_conn_id: 1,
            dirty: false,
            connects_since_accept: 0,
        }
    }

    /// The socket family in use.
    pub fn kind(&self) -> SockKind {
        self.kind
    }

    /// The name an endpoint registered under.
    pub fn name(&self, addr: Addr) -> &str {
        &self.endpoints[addr.raw() as usize].name
    }

    /// Whether `addr` is currently crashed.
    pub fn is_crashed(&self, addr: Addr) -> bool {
        self.endpoints[addr.raw() as usize].crashed
    }

    /// Frames accepted by `send` but not yet delivered, dropped or
    /// dead-lettered — the reactor's "in flight through the kernel"
    /// count.
    pub fn outstanding(&self) -> u64 {
        self.stats.sent - self.stats.delivered - self.stats.dropped - self.stats.dead_lettered
    }

    fn bind_listener(&mut self, index: usize, epoch: u64) -> (Listener, Target) {
        match self.kind {
            SockKind::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))
                    .expect("bind loopback TCP listener");
                listener
                    .set_nonblocking(true)
                    .expect("set listener non-blocking");
                let addr = listener.local_addr().expect("listener local addr");
                (Listener::Tcp(listener), Target::Tcp(addr))
            }
            #[cfg(unix)]
            SockKind::Uds => {
                let dir = self.dir.as_ref().expect("unix socket directory");
                let path = dir.join(format!("ep{index}-{epoch}.sock"));
                let listener = UnixListener::bind(&path).expect("bind unix listener");
                listener
                    .set_nonblocking(true)
                    .expect("set listener non-blocking");
                (Listener::Uds(listener, path.clone()), Target::Uds(path))
            }
        }
    }

    fn dial(&mut self, target: &Target) -> std::io::Result<Stream> {
        // A burst of dials between reactor passes can outrun a
        // listener's backlog; interleave accepts.
        self.connects_since_accept += 1;
        if self.connects_since_accept >= ACCEPTS_EVERY {
            self.connects_since_accept = 0;
            accept_pass(&mut self.endpoints);
        }
        match target {
            Target::Tcp(addr) => {
                // Loopback connects complete immediately when the
                // listener is up, so a blocking dial costs nothing and
                // avoids hand-rolling EINPROGRESS tracking.
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_nonblocking(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Target::Uds(path) => {
                let s = UnixStream::connect(path)?;
                s.set_nonblocking(true)?;
                Ok(Stream::Uds(s))
            }
        }
    }

    /// Short-circuits a send to a locally-known-crashed endpoint:
    /// dead-letter plus a closure event back to the sender (the same
    /// semantics `SimNet` and `ThreadNet` give the probe loop).
    fn dead_letter(&mut self, from: Addr, to: Addr) {
        self.stats.dead_lettered += 1;
        self.stats.closures += 1;
        self.endpoints[from.raw() as usize]
            .inbox
            .push_back(NetEvent::ConnectionClosed { peer: to, at: 0 });
        self.dirty = true;
    }

    /// One readiness pass: accepts, flushes, reads, EOF-polls. Returns
    /// whether anything moved.
    fn poll_once(&mut self) -> bool {
        let mut progressed = false;
        self.connects_since_accept = 0;
        progressed |= accept_pass(&mut self.endpoints);
        let mut stats = self.stats;
        for ep in &mut self.endpoints {
            progressed |= service_endpoint(ep, &mut stats);
        }
        self.stats = stats;
        progressed
    }
}

/// Accepts every pending connection on every live listener. Returns
/// whether anything was accepted; accepted connections learn their
/// peer identity and connection id from the hello they carry.
fn accept_pass(endpoints: &mut [Endpoint]) -> bool {
    let mut progressed = false;
    for ep in endpoints {
        let Some(listener) = &ep.listener else { continue };
        loop {
            let accepted = match listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        s.set_nonblocking(true).ok().map(|()| Stream::Tcp(s))
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
                #[cfg(unix)]
                Listener::Uds(l, _) => match l.accept() {
                    Ok((s, _)) => s.set_nonblocking(true).ok().map(|()| Stream::Uds(s)),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => None,
                    Err(_) => None,
                },
            };
            match accepted {
                Some(stream) => {
                    progressed = true;
                    ep.inc.push(InConn {
                        stream,
                        rbuf: Vec::new(),
                        peer: None,
                        conn_id: 0,
                        delivered: 0,
                        dead: false,
                    });
                }
                None => break,
            }
        }
    }
    progressed
}

/// Flushes and EOF-polls outgoing connections, reads and frames
/// incoming ones, surfaces closures. Mutates only `ep` and `stats`.
fn service_endpoint(ep: &mut Endpoint, stats: &mut NetStats) -> bool {
    let mut progressed = false;
    let mut dead_sessions: Vec<(u32, u64)> = Vec::new();

    for conn in &mut ep.out {
        if conn.dead {
            continue;
        }
        progressed |= conn.flush();
        conn.poll_eof();
        if conn.dead {
            dead_sessions.push((conn.to, conn.peer_epoch));
        }
    }

    let mut read_chunk = [0u8; 16 * 1024];
    for conn in &mut ep.inc {
        if conn.dead {
            continue;
        }
        loop {
            match conn.stream.read(&mut read_chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&read_chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        progressed |= parse_frames(conn, &mut ep.inbox, stats);
        if conn.dead {
            if let Some(session) = conn.peer {
                dead_sessions.push(session);
            }
        }
    }

    if !dead_sessions.is_empty() {
        // Both halves of a session can EOF in one pass; one closure per
        // dead (peer, epoch) session, ever.
        for session in dead_sessions {
            retire_session(ep, session);
            if ep.closures_seen.insert(session) {
                stats.closures += 1;
                ep.inbox.push_back(NetEvent::ConnectionClosed {
                    peer: Addr::from_raw(session.0),
                    at: 0,
                });
                progressed = true;
            }
        }
        ep.out.retain(|c| !c.dead);
        ep.inc.retain(|c| !c.dead);
    }
    progressed
}

/// Marks every connection of `(peer, epoch)` at `ep` dead, so the
/// second half of a closed session is dropped silently.
fn retire_session(ep: &mut Endpoint, session: (u32, u64)) {
    for c in &mut ep.out {
        if (c.to, c.peer_epoch) == session {
            c.dead = true;
        }
    }
    for c in &mut ep.inc {
        if c.peer == Some(session) {
            c.dead = true;
        }
    }
}

/// Parses the hello and every complete frame out of `conn.rbuf`,
/// delivering messages to `inbox`. Returns whether anything was parsed.
fn parse_frames(conn: &mut InConn, inbox: &mut VecDeque<NetEvent>, stats: &mut NetStats) -> bool {
    let mut progressed = false;
    let mut pos = 0usize;
    loop {
        let buf = &conn.rbuf[pos..];
        if conn.peer.is_none() {
            if buf.len() < HELLO_LEN {
                break;
            }
            let peer = u32::from_le_bytes(buf[0..4].try_into().expect("hello addr"));
            let conn_id = u64::from_le_bytes(buf[4..12].try_into().expect("hello conn id"));
            let epoch = u64::from_le_bytes(buf[12..20].try_into().expect("hello epoch"));
            conn.peer = Some((peer, epoch));
            conn.conn_id = conn_id;
            pos += HELLO_LEN;
            progressed = true;
            continue;
        }
        if buf.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().expect("frame len")) as usize;
        if len > MAX_FRAME {
            conn.dead = true;
            break;
        }
        if buf.len() < 4 + len {
            break;
        }
        let payload = Bytes::copy_from_slice(&buf[4..4 + len]);
        let (peer, _) = conn.peer.expect("hello parsed");
        inbox.push_back(NetEvent::Message {
            from: Addr::from_raw(peer),
            payload,
            at: 0,
        });
        conn.delivered += 1;
        stats.delivered += 1;
        pos += 4 + len;
        progressed = true;
    }
    if pos > 0 {
        conn.rbuf.drain(..pos);
    }
    progressed
}

impl Transport for SockNet {
    fn register(&mut self, name: &str) -> Addr {
        let index = self.endpoints.len();
        let (listener, target) = self.bind_listener(index, 0);
        self.endpoints.push(Endpoint {
            name: name.to_owned(),
            listener: Some(listener),
            target: Some(target),
            crashed: false,
            epoch: 0,
            inbox: VecDeque::new(),
            out: Vec::new(),
            inc: Vec::new(),
            closures_seen: HashSet::new(),
        });
        Addr::from_raw(index as u32)
    }

    fn send(&mut self, from: Addr, to: Addr, payload: Bytes) {
        self.stats.sent += 1;
        let to_idx = to.raw() as usize;
        if self.endpoints[to_idx].crashed {
            self.dead_letter(from, to);
            return;
        }
        let peer_epoch = self.endpoints[to_idx].epoch;
        let from_idx = from.raw() as usize;
        let have_conn = self.endpoints[from_idx]
            .out
            .iter()
            .any(|c| c.to == to.raw() && c.peer_epoch == peer_epoch && !c.dead);
        if !have_conn {
            let target = self.endpoints[to_idx]
                .target
                .clone()
                .expect("live endpoint has a dial target");
            match self.dial(&target) {
                Ok(stream) => {
                    let conn_id = self.next_conn_id;
                    self.next_conn_id += 1;
                    let mut hello = [0u8; HELLO_LEN];
                    hello[0..4].copy_from_slice(&from.raw().to_le_bytes());
                    hello[4..12].copy_from_slice(&conn_id.to_le_bytes());
                    hello[12..20]
                        .copy_from_slice(&self.endpoints[from_idx].epoch.to_le_bytes());
                    let mut conn = OutConn {
                        to: to.raw(),
                        peer_epoch,
                        conn_id,
                        stream,
                        wbuf: Vec::new(),
                        wpos: 0,
                        bytes_flushed: 0,
                        frame_ends: VecDeque::new(),
                        bytes_appended: 0,
                        sent: 0,
                        fully_flushed: 0,
                        accounted: false,
                        dead: false,
                    };
                    conn.append(&hello, false);
                    self.endpoints[from_idx].out.push(conn);
                }
                Err(_) => {
                    // The listener vanished under us: same observable as
                    // a dead-lettered send (`sent` is already counted).
                    self.dead_letter(from, to);
                    return;
                }
            }
        }
        let conn = self.endpoints[from_idx]
            .out
            .iter_mut()
            .find(|c| c.to == to.raw() && c.peer_epoch == peer_epoch && !c.dead)
            .expect("connection just ensured");
        let len = (payload.len() as u32).to_le_bytes();
        conn.append(&len, false);
        conn.append(&payload, true);
        conn.flush();
    }

    fn drain_into(&mut self, at: Addr, out: &mut Vec<NetEvent>) {
        out.extend(self.endpoints[at.raw() as usize].inbox.drain(..));
    }

    fn drain_closure_count(&mut self, at: Addr) -> u64 {
        let inbox = &mut self.endpoints[at.raw() as usize].inbox;
        let n = inbox.iter().filter(|e| e.is_closure()).count() as u64;
        inbox.clear();
        n
    }

    fn has_pending(&self, addr: Addr) -> bool {
        !self.endpoints[addr.raw() as usize].inbox.is_empty()
    }

    /// One reactor pass, plus a bounded settle wait: when frames are
    /// known to be in flight through the kernel but this pass moved
    /// nothing, the reactor re-polls on [`SockTiming::poll_interval`]
    /// until something lands, the kernel stays observably idle for
    /// [`SETTLE_IDLE_POLLS`] consecutive passes, or
    /// [`SockTiming::settle_timeout`] expires — so `while net.step() {}`
    /// reaches real quiescence instead of racing the kernel's delivery
    /// latency, and a *stuck* frame (e.g. one whose connection died
    /// mid-parse) costs a few idle polls, not the whole timeout.
    fn step(&mut self) -> bool {
        let mut progressed = std::mem::take(&mut self.dirty);
        progressed |= self.poll_once();
        if progressed {
            return true;
        }
        if self.outstanding() == 0 {
            return false;
        }
        let deadline = Instant::now() + self.timing.settle_timeout;
        let mut idle_polls = 0u32;
        loop {
            std::thread::sleep(self.timing.poll_interval);
            if self.poll_once() {
                return true;
            }
            idle_polls += 1;
            if self.outstanding() == 0
                || idle_polls >= SETTLE_IDLE_POLLS
                || Instant::now() >= deadline
            {
                return false;
            }
        }
    }

    /// Closes the endpoint's listener and every one of its sockets; the
    /// kernel delivers the crash observable (EOF) to peers, read by
    /// their next [`Transport::step`]. Frames that died unread in
    /// kernel buffers are dead-lettered here, keeping the conservation
    /// identity exact.
    fn crash(&mut self, addr: Addr) {
        let idx = addr.raw() as usize;
        if self.endpoints[idx].crashed {
            return;
        }
        let epoch = self.endpoints[idx].epoch;
        // Frames peers queued toward us that we never parsed die with
        // our sockets.
        let delivered_by_conn: HashMap<u64, u64> = self.endpoints[idx]
            .inc
            .iter()
            .filter(|c| !c.dead)
            .map(|c| (c.conn_id, c.delivered))
            .collect();
        let stats = &mut self.stats;
        for (j, ep) in self.endpoints.iter_mut().enumerate() {
            if j == idx {
                continue;
            }
            for conn in &mut ep.out {
                if conn.to == addr.raw() && conn.peer_epoch == epoch && !conn.accounted {
                    conn.accounted = true;
                    let delivered = delivered_by_conn.get(&conn.conn_id).copied().unwrap_or(0);
                    stats.dead_lettered += conn.sent.saturating_sub(delivered);
                }
            }
        }
        // Frames we queued outward but never fully flushed die too; the
        // fully-flushed ones survive in the kernel (a close flushes) and
        // are counted as delivered when peers read them.
        let ep = &mut self.endpoints[idx];
        for conn in &mut ep.out {
            if !conn.accounted {
                conn.accounted = true;
                stats.dead_lettered += conn.sent.saturating_sub(conn.fully_flushed);
            }
        }
        ep.crashed = true;
        ep.inbox.clear();
        ep.listener = None; // drop closes (and unlinks a UDS path)
        ep.target = None;
        ep.out.clear(); // drop closes; peers read EOF
        ep.inc.clear();
    }

    /// Rebinds a fresh listener under a bumped epoch: peers' stale
    /// connections stay around just long enough to surface their EOF
    /// closure, while new sends dial the new socket.
    fn restart(&mut self, addr: Addr) {
        let idx = addr.raw() as usize;
        if !self.endpoints[idx].crashed {
            return;
        }
        let epoch = self.endpoints[idx].epoch + 1;
        let (listener, target) = self.bind_listener(idx, epoch);
        let ep = &mut self.endpoints[idx];
        ep.crashed = false;
        ep.epoch = epoch;
        ep.inbox.clear();
        ep.listener = Some(listener);
        ep.target = Some(target);
    }

    fn note_malformed(&mut self) {
        self.stats.malformed += 1;
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

impl Drop for SockNet {
    fn drop(&mut self) {
        self.endpoints.clear(); // listeners unlink their UDS paths first
        if let Some(dir) = &self.dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settle(net: &mut SockNet) {
        while Transport::step(net) {}
    }

    fn backends() -> Vec<SockNet> {
        let mut v = vec![SockNet::tcp()];
        #[cfg(unix)]
        v.push(SockNet::uds());
        v
    }

    #[test]
    fn kernel_round_trip_on_both_families() {
        for mut net in backends() {
            let a = net.register("a");
            let b = net.register("b");
            net.send(a, b, Bytes::from_static(b"through the kernel"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(b, &mut out);
            assert_eq!(out.len(), 1, "{:?}", net.kind());
            assert_eq!(out[0].peer(), a);
            assert_eq!(out[0].payload().unwrap().as_ref(), b"through the kernel");
            assert_eq!(net.stats().delivered, 1);
            assert_eq!(net.outstanding(), 0);
        }
    }

    #[test]
    fn crash_is_observed_as_a_kernel_eof() {
        for mut net in backends() {
            let a = net.register("attacker");
            let s = net.register("server");
            net.send(a, s, Bytes::from_static(b"probe"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(s, &mut out);
            assert_eq!(out.len(), 1);
            net.crash(s);
            settle(&mut net);
            out.clear();
            net.drain_into(a, &mut out);
            assert_eq!(
                out.iter().filter(|e| e.is_closure()).count(),
                1,
                "exactly one closure per dead session ({:?})",
                net.kind()
            );
            assert_eq!(out[0].peer(), s);
        }
    }

    #[test]
    fn restart_dials_the_new_socket_and_conservation_holds() {
        for mut net in backends() {
            let a = net.register("a");
            let s = net.register("s");
            net.send(a, s, Bytes::from_static(b"x"));
            settle(&mut net);
            net.crash(s);
            settle(&mut net);
            // Send into the outage: dead-letter + closure to sender.
            net.send(a, s, Bytes::from_static(b"lost"));
            net.restart(s);
            net.send(a, s, Bytes::from_static(b"y"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(s, &mut out);
            let delivered: Vec<_> = out.iter().filter_map(NetEvent::payload).collect();
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered[0].as_ref(), b"y");
            let st = net.stats();
            assert_eq!(st.sent, 3);
            assert_eq!(
                st.delivered + st.dropped + st.dead_lettered,
                st.sent,
                "conservation identity ({:?}): {st:?}",
                net.kind()
            );
        }
    }

    #[test]
    fn frames_unread_at_crash_are_dead_lettered() {
        for mut net in backends() {
            let a = net.register("a");
            let s = net.register("s");
            // Establish, then queue frames the victim never reads.
            net.send(a, s, Bytes::from_static(b"first"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(s, &mut out);
            net.send(a, s, Bytes::from_static(b"in flight 1"));
            net.send(a, s, Bytes::from_static(b"in flight 2"));
            // Crash before any reactor pass parses them.
            net.crash(s);
            settle(&mut net);
            let st = net.stats();
            assert_eq!(st.sent, 3);
            assert_eq!(st.delivered, 1);
            assert_eq!(st.dead_lettered, 2, "{:?}", net.kind());
            assert_eq!(net.outstanding(), 0);
        }
    }

    #[test]
    fn a_stuck_frame_costs_idle_polls_not_the_settle_timeout() {
        for mut net in backends() {
            let a = net.register("a");
            let b = net.register("b");
            net.send(a, b, Bytes::from_static(b"well-formed"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(b, &mut out);
            assert_eq!(out.len(), 1);
            // A frame longer than MAX_FRAME kills the receiving
            // connection mid-parse without crediting a delivery, so the
            // in-flight counter is stuck nonzero for good.
            net.send(a, b, Bytes::from(vec![0u8; MAX_FRAME + 1]));
            settle(&mut net);
            assert!(
                net.outstanding() > 0,
                "{:?}: the oversized frame must stay in flight",
                net.kind()
            );
            // The next step must conclude the kernel is quiescent after
            // SETTLE_IDLE_POLLS empty passes (~10ms), not burn the full
            // 5s settle_timeout on a counter that can never drain.
            let start = Instant::now();
            assert!(!Transport::step(&mut net));
            assert!(
                start.elapsed() < Duration::from_secs(1),
                "{:?}: a stuck frame must exit on idle polls, took {:?}",
                net.kind(),
                start.elapsed()
            );
        }
    }

    #[test]
    fn broadcast_shares_the_payload_and_skips_the_sender() {
        for mut net in backends() {
            let a = net.register("a");
            let b = net.register("b");
            let c = net.register("c");
            net.broadcast(a, &[a, b, c], Bytes::from_static(b"fanout"));
            settle(&mut net);
            let mut out = Vec::new();
            net.drain_into(a, &mut out);
            assert!(out.is_empty(), "broadcast must skip the sender");
            net.drain_into(b, &mut out);
            net.drain_into(c, &mut out);
            assert_eq!(out.len(), 2);
        }
    }

    #[test]
    fn uds_directory_is_cleaned_up_on_drop() {
        #[cfg(unix)]
        {
            let mut net = SockNet::uds();
            let _ = net.register("a");
            let dir = net.dir.clone().unwrap();
            assert!(dir.exists());
            drop(net);
            assert!(!dir.exists(), "socket dir must be removed");
        }
    }

    #[test]
    fn many_endpoints_fan_in_through_one_listener() {
        // A burst of dials larger than a listener backlog would hold:
        // the dial path interleaves accept passes.
        let mut net = SockNet::tcp();
        let hub = net.register("hub");
        let clients: Vec<Addr> = (0..200).map(|i| net.register(&format!("c{i}"))).collect();
        for &c in &clients {
            net.send(c, hub, Bytes::from_static(b"hi"));
        }
        settle(&mut net);
        let mut out = Vec::new();
        net.drain_into(hub, &mut out);
        assert_eq!(out.len(), 200);
        assert_eq!(net.stats().delivered, 200);
    }
}
