//! The event vocabulary shared by all transports.

use bytes::Bytes;

use crate::addr::Addr;

/// An event observed by an endpoint.
///
/// `ConnectionClosed` is the de-randomization side channel: when a process
/// crashes, every peer it had an open connection with observes the closure
/// (paper §2.1: the attacker "requires … a way of observing a process crash
/// in the remote target machine").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetEvent {
    /// A message was delivered.
    Message {
        /// Sender address.
        from: Addr,
        /// Opaque payload.
        payload: Bytes,
        /// Logical delivery time (0 for the threaded transport).
        at: u64,
    },
    /// A peer's process crashed, closing the connection.
    ConnectionClosed {
        /// The crashed peer.
        peer: Addr,
        /// Logical time of the closure (0 for the threaded transport).
        at: u64,
    },
}

impl NetEvent {
    /// The peer this event concerns (sender or crashed endpoint).
    pub fn peer(&self) -> Addr {
        match self {
            NetEvent::Message { from, .. } => *from,
            NetEvent::ConnectionClosed { peer, .. } => *peer,
        }
    }

    /// Returns the payload if this is a message event.
    pub fn payload(&self) -> Option<&Bytes> {
        match self {
            NetEvent::Message { payload, .. } => Some(payload),
            NetEvent::ConnectionClosed { .. } => None,
        }
    }

    /// Returns `true` for `ConnectionClosed`.
    pub fn is_closure(&self) -> bool {
        matches!(self, NetEvent::ConnectionClosed { .. })
    }
}

/// Counters a transport maintains; used by tests and the overhead bench.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Messages accepted by `send`.
    pub sent: u64,
    /// Messages delivered to an inbox.
    pub delivered: u64,
    /// Messages dropped by loss or partition — whether by a backend's
    /// own knobs ([`SimNet`](crate::sim::SimNet) drop rate / partition
    /// schedule) or injected by a
    /// [`FaultyTransport`](crate::fault::FaultyTransport) decorator in
    /// front of any backend; decorator drops count here *and* in `sent`,
    /// preserving `delivered + dropped + dead_lettered == sent` at
    /// quiescence.
    pub dropped: u64,
    /// Messages discarded because the destination crashed first.
    pub dead_lettered: u64,
    /// `ConnectionClosed` events emitted.
    pub closures: u64,
    /// Delivered payloads whose envelope failed to decode, as reported by
    /// the consumer via
    /// [`Transport::note_malformed`](crate::transport::Transport::note_malformed).
    /// Counted *in addition to* `delivered` — the transport delivered the
    /// bytes; the envelope rejected them.
    pub malformed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let m = NetEvent::Message {
            from: Addr::from_raw(1),
            payload: Bytes::from_static(b"x"),
            at: 5,
        };
        assert_eq!(m.peer(), Addr::from_raw(1));
        assert_eq!(m.payload().unwrap().as_ref(), b"x");
        assert!(!m.is_closure());

        let c = NetEvent::ConnectionClosed {
            peer: Addr::from_raw(2),
            at: 9,
        };
        assert_eq!(c.peer(), Addr::from_raw(2));
        assert!(c.payload().is_none());
        assert!(c.is_closure());
    }

    #[test]
    fn stats_default_zero() {
        let s = NetStats::default();
        assert_eq!(
            s.sent + s.delivered + s.dropped + s.dead_lettered + s.closures + s.malformed,
            0
        );
    }
}
