//! Network substrate for the FORTRESS protocol stack: three transports
//! behind one explicit interface, and the wire-tag registry every message
//! family encodes against.
//!
//! # The [`Transport`] interface
//!
//! Protocol drive loops are written against the object-safe
//! [`transport::Transport`] trait — endpoints ([`Transport::register`]),
//! framed delivery ([`Transport::send`] /
//! [`Transport::broadcast`]), batched inbox draining
//! ([`Transport::drain_into`], which appends into a caller-reused
//! buffer), crash semantics ([`Transport::crash`] / [`Transport::restart`])
//! and counters ([`Transport::stats`]). Two backends implement it:
//!
//! * [`sim::SimNet`] — a deterministic logical-time network: seeded
//!   latency sampling, message drops, partitions, and crash/restart of
//!   endpoints with **`ConnectionClosed` events to every connected
//!   peer**.
//! * [`threaded::ThreadNet`] — a crossbeam-channel runtime with the same
//!   semantics over real threads, used by the runnable examples.
//! * [`sock::SockNet`] — the same semantics over real kernel sockets
//!   (TCP loopback or Unix-domain, non-blocking with a hand-rolled
//!   readiness loop), used by the `fortress-loadgen` wall-clock soak
//!   harness. The shared behavioural contract all three must satisfy
//!   lives in [`conformance`].
//!
//! The crash observable is the point: de-randomization attacks (paper
//! §2.1–2.2) hinge on "a process crash at the target machine results in
//! the closure of the TCP connection that the attacker has with the child
//! server process" (Shacham et al., Sovarel et al.). Both backends
//! reproduce exactly that side channel, so the same sans-I/O engine runs
//! deterministically under `SimNet` in tests and multi-threaded under
//! `ThreadNet` in the examples — `Transport` is what makes that a
//! guarantee instead of a convention.
//!
//! A third piece composes over both: [`fault::FaultyTransport`] is a
//! decorator that applies a [`fault::FaultPlan`] — per-link loss, delay
//! with reordering, duplication and scheduled partitions — to any
//! backend, driven by a dedicated per-trial SplitMix64 stream so fault
//! schedules never perturb protocol randomness
//! ([`fault::FaultPlan::None`] is a byte-identical passthrough).
//!
//! # The [`WireKind`] registry
//!
//! Every framed payload starts with one tag byte from [`wire::WireKind`].
//! Receivers classify a frame once ([`WireKind::classify`]) and run
//! exactly one family decoder; undecodable bytes are reported back via
//! [`Transport::note_malformed`] and show up in
//! [`event::NetStats::malformed`] instead of vanishing. The *typed*
//! envelope over the registry (`WireMsg`, with a variant per kind plus an
//! explicit `Malformed` outcome) lives in `fortress_core::wire`, where
//! the payload types are in scope.
//!
//! [`Transport::register`]: transport::Transport::register
//! [`Transport::send`]: transport::Transport::send
//! [`Transport::broadcast`]: transport::Transport::broadcast
//! [`Transport::drain_into`]: transport::Transport::drain_into
//! [`Transport::crash`]: transport::Transport::crash
//! [`Transport::restart`]: transport::Transport::restart
//! [`Transport::stats`]: transport::Transport::stats
//! [`Transport::note_malformed`]: transport::Transport::note_malformed
//! [`WireKind::classify`]: wire::WireKind::classify
//!
//! # Example
//!
//! One function, both transports:
//!
//! ```
//! use fortress_net::transport::Transport;
//! use fortress_net::sim::{SimConfig, SimNet};
//! use fortress_net::threaded::ThreadNet;
//! use fortress_net::event::NetEvent;
//! use bytes::Bytes;
//!
//! fn probe_and_observe<T: Transport>(net: &mut T) -> Vec<NetEvent> {
//!     let attacker = net.register("attacker");
//!     let server = net.register("server");
//!     net.send(attacker, server, Bytes::from_static(b"probe"));
//!     while net.step() {}
//!     // The server process crashes; the attacker observes the closure.
//!     net.crash(server);
//!     let mut seen = Vec::new();
//!     net.drain_into(attacker, &mut seen);
//!     seen
//! }
//!
//! for events in [
//!     probe_and_observe(&mut SimNet::new(SimConfig::default())),
//!     probe_and_observe(&mut ThreadNet::new()),
//! ] {
//!     assert!(events.iter().any(NetEvent::is_closure));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod conformance;
pub mod event;
pub mod fault;
pub mod shared;
pub mod sim;
pub mod sock;
pub mod threaded;
pub mod transport;
pub mod wire;

pub use addr::Addr;
pub use event::{NetEvent, NetStats};
pub use fault::{FaultPlan, FaultyTransport, PartitionWindow, SlowLink, FAULT_STREAM};
pub use shared::SharedNet;
pub use sim::{Latency, SimConfig, SimNet};
pub use sock::{SockKind, SockNet, SockTiming};
pub use threaded::{NetHandle, ParkBackoff, ThreadNet};
pub use transport::{Transport, TrialReset};
pub use wire::WireKind;
