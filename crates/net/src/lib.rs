//! Simulated network substrate for the FORTRESS protocol stack.
//!
//! De-randomization attacks (paper §2.1–2.2) hinge on a network-level side
//! channel: "a process crash at the target machine results in the closure of
//! the TCP connection that the attacker has with the child server process"
//! (Shacham et al., Sovarel et al.). This crate reproduces exactly that
//! observable:
//!
//! * [`sim`] — [`sim::SimNet`], a deterministic logical-time network: seeded
//!   latency sampling, message drops, partitions, crash/restart of endpoints
//!   with **`ConnectionClosed` events to every connected peer**.
//! * [`threaded`] — [`threaded::ThreadNet`], a crossbeam-channel runtime with
//!   the same event vocabulary, used by the runnable examples.
//! * [`addr`] / [`event`] — addresses, envelopes and the event vocabulary
//!   shared by both transports.
//!
//! Protocol engines in `fortress-replication` and `fortress-core` are
//! written sans-I/O (they consume [`event::NetEvent`]s and emit outbound
//! messages), so the same engine runs deterministically under `SimNet` in
//! tests and multi-threaded under `ThreadNet` in the examples.
//!
//! # Example
//!
//! ```
//! use fortress_net::sim::{SimConfig, SimNet};
//! use fortress_net::event::NetEvent;
//! use bytes::Bytes;
//!
//! let mut net = SimNet::new(SimConfig::default());
//! let a = net.register("attacker");
//! let s = net.register("server");
//! net.send(a, s, Bytes::from_static(b"probe"));
//! net.run_until_quiet();
//! assert!(matches!(net.recv(s), Some(NetEvent::Message { from, .. }) if from == a));
//!
//! // The server process crashes; the attacker observes the closed connection.
//! net.crash(s);
//! assert!(matches!(net.recv(a), Some(NetEvent::ConnectionClosed { peer, .. }) if peer == s));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod event;
pub mod sim;
pub mod threaded;

pub use addr::Addr;
pub use event::NetEvent;
pub use sim::{Latency, SimConfig, SimNet};
pub use threaded::{NetHandle, ThreadNet};
