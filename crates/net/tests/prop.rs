//! Property-based invariants of the simulated network.

use bytes::Bytes;
use fortress_net::event::NetEvent;
use fortress_net::sim::{Latency, SimConfig, SimNet};
use proptest::prelude::*;

proptest! {
    /// Conservation: every sent message is delivered, dropped or
    /// dead-lettered — none vanish.
    #[test]
    fn message_conservation(
        seed in any::<u64>(),
        drop_rate in 0.0f64..1.0,
        sends in 1usize..100,
    ) {
        let mut net = SimNet::new(SimConfig {
            seed,
            drop_rate,
            latency: Latency::Uniform(1, 5),
        });
        let a = net.register("a");
        let b = net.register("b");
        for i in 0..sends {
            net.send(a, b, Bytes::copy_from_slice(&[i as u8]));
        }
        net.run_until_quiet();
        let s = net.stats();
        prop_assert_eq!(s.sent, sends as u64);
        prop_assert_eq!(s.delivered + s.dropped + s.dead_lettered, s.sent);
        prop_assert_eq!(net.pending(b) as u64, s.delivered);
    }

    /// FIFO per sender-receiver pair under fixed latency.
    #[test]
    fn fifo_under_fixed_latency(seed in any::<u64>(), sends in 1usize..60) {
        let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
        let a = net.register("a");
        let b = net.register("b");
        for i in 0..sends {
            net.send(a, b, Bytes::copy_from_slice(&(i as u32).to_le_bytes()));
        }
        net.run_until_quiet();
        let mut expected = 0u32;
        for ev in net.drain(b) {
            if let NetEvent::Message { payload, .. } = ev {
                let got = u32::from_le_bytes(payload.as_ref().try_into().unwrap());
                prop_assert_eq!(got, expected);
                expected += 1;
            }
        }
        prop_assert_eq!(expected as usize, sends);
    }

    /// Crash notification: after any traffic pattern, crashing an endpoint
    /// notifies exactly the peers it had open connections with.
    #[test]
    fn crash_notifies_each_connected_peer_once(
        seed in any::<u64>(),
        talkers in proptest::collection::vec(any::<bool>(), 3),
    ) {
        let mut net = SimNet::new(SimConfig { seed, ..SimConfig::default() });
        let server = net.register("server");
        let peers: Vec<_> = (0..talkers.len())
            .map(|i| net.register(&format!("c{i}")))
            .collect();
        for (i, talks) in talkers.iter().enumerate() {
            if *talks {
                net.send(peers[i], server, Bytes::from_static(b"hi"));
            }
        }
        net.run_until_quiet();
        net.crash(server);
        for (i, talks) in talkers.iter().enumerate() {
            let closures = net
                .drain(peers[i])
                .iter()
                .filter(|e| e.is_closure())
                .count();
            prop_assert_eq!(closures, usize::from(*talks), "peer {}", i);
        }
    }

    /// Determinism: identical seeds and send sequences give identical
    /// delivery outcomes even with loss and jitter.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>(), sends in 1usize..50) {
        let run = |seed: u64| {
            let mut net = SimNet::new(SimConfig {
                seed,
                drop_rate: 0.3,
                latency: Latency::Uniform(1, 9),
            });
            let a = net.register("a");
            let b = net.register("b");
            for i in 0..sends {
                net.send(a, b, Bytes::copy_from_slice(&[i as u8]));
            }
            net.run_until_quiet();
            net.drain(b)
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
