//! Every `Transport` backend against the shared behavioural contract.
//!
//! One suite (`fortress_net::conformance`), five backends: the
//! deterministic simulator, the threaded runtime, the fault decorator
//! in passthrough mode, and both kernel-socket families. A backend
//! added later gets its conformance run by adding one factory here.

use fortress_net::conformance;
use fortress_net::fault::{FaultPlan, FaultyTransport};
use fortress_net::sim::{SimConfig, SimNet};
use fortress_net::sock::SockNet;
use fortress_net::threaded::ThreadNet;

#[test]
fn simnet_conforms() {
    conformance::check_all(|| SimNet::new(SimConfig::default()), "SimNet");
}

#[test]
fn threadnet_conforms() {
    conformance::check_all(ThreadNet::new, "ThreadNet");
}

#[test]
fn faulty_passthrough_conforms() {
    conformance::check_all(
        || FaultyTransport::new(SimNet::new(SimConfig::default()), FaultPlan::None, 0xFA17),
        "FaultyTransport<SimNet>/None",
    );
}

#[test]
fn socknet_tcp_conforms() {
    conformance::check_all(SockNet::tcp, "SockNet/tcp");
}

#[cfg(unix)]
#[test]
fn socknet_uds_conforms() {
    conformance::check_all(SockNet::uds, "SockNet/uds");
}
