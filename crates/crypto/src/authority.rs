//! The trusted key authority, modeling the paper's trusted name server.
//!
//! FORTRESS assumes "a trusted name-server (NS) that is read-only for
//! clients" through which principals' public keys are learned. Because this
//! reproduction uses MAC-based signatures (see crate docs), the authority is
//! the component that holds every principal's verification key and answers
//! verification queries. It is *trusted*: the attack model never allows it to
//! be compromised, exactly as the paper assumes for its NS.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::error::CryptoError;
use crate::hmac::HmacSha256;
use crate::keys::SecretKey;
use crate::sha256::Sha256;
use crate::sig::Signature;

/// Trusted registry of signing principals and their verification keys.
///
/// Thread-safe: proxies, servers and clients may share one authority across
/// threads (`Arc<KeyAuthority>`).
///
/// # Example
///
/// ```
/// use fortress_crypto::authority::KeyAuthority;
/// use fortress_crypto::sig::Signer;
///
/// let authority = KeyAuthority::with_seed(1);
/// let proxy = Signer::register("proxy-0", &authority);
/// let sig = proxy.sign(b"fwd");
/// assert!(authority.verify("proxy-0", b"fwd", &sig));
/// ```
#[derive(Debug)]
pub struct KeyAuthority {
    principals: RwLock<HashMap<String, SecretKey>>,
    /// Master seed from which registered keys are derived; keeps whole-system
    /// runs reproducible from a single seed. Behind a lock only so
    /// [`KeyAuthority::reset_with_seed`] can rewind shared handles.
    master: RwLock<SecretKey>,
    counter: RwLock<u64>,
}

fn master_from_seed(seed: u64) -> SecretKey {
    let digest = Sha256::digest_parts(&[b"fortress-authority-seed", &seed.to_le_bytes()]);
    SecretKey::from_bytes(digest.0)
}

impl KeyAuthority {
    /// Creates an authority with a random master seed.
    pub fn new() -> Self {
        let master = SecretKey::generate(&mut rand::thread_rng());
        KeyAuthority {
            principals: RwLock::new(HashMap::new()),
            master: RwLock::new(master),
            counter: RwLock::new(0),
        }
    }

    /// Creates an authority whose registrations are a deterministic function
    /// of `seed` and the registration order/names.
    pub fn with_seed(seed: u64) -> Self {
        KeyAuthority {
            principals: RwLock::new(HashMap::new()),
            master: RwLock::new(master_from_seed(seed)),
            counter: RwLock::new(0),
        }
    }

    /// Rewinds shared handles to the state [`KeyAuthority::with_seed`]
    /// would construct: principals cleared (keeping map capacity), the
    /// derivation counter zeroed, the master key re-derived from `seed`.
    /// Re-registering the same names in the same order afterwards yields
    /// identical keys — the trial-arena reset path.
    pub fn reset_with_seed(&self, seed: u64) {
        let mut principals = self.principals.write();
        let mut counter = self.counter.write();
        *self.master.write() = master_from_seed(seed);
        principals.clear();
        *counter = 0;
    }

    /// Registers a new principal and returns its secret signing key.
    ///
    /// Prefer [`crate::sig::Signer::register`], which wraps this.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::DuplicatePrincipal`] if the name is taken.
    pub fn register(&self, name: &str) -> Result<SecretKey, CryptoError> {
        let mut principals = self.principals.write();
        if principals.contains_key(name) {
            return Err(CryptoError::DuplicatePrincipal(name.to_owned()));
        }
        let mut counter = self.counter.write();
        let master = self.master.read();
        let digest = Sha256::digest_parts(&[
            b"fortress-principal",
            master.expose(),
            &counter.to_le_bytes(),
            name.as_bytes(),
        ]);
        *counter += 1;
        let key = SecretKey::from_bytes(digest.0);
        principals.insert(name.to_owned(), key.clone());
        Ok(key)
    }

    /// Re-keys an existing principal (used when a node is re-randomized and
    /// rebooted with fresh credentials). Returns the new key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownPrincipal`] if the principal was never
    /// registered.
    pub fn rekey(&self, name: &str) -> Result<SecretKey, CryptoError> {
        let mut principals = self.principals.write();
        if !principals.contains_key(name) {
            return Err(CryptoError::UnknownPrincipal(name.to_owned()));
        }
        let mut counter = self.counter.write();
        let master = self.master.read();
        let digest = Sha256::digest_parts(&[
            b"fortress-rekey",
            master.expose(),
            &counter.to_le_bytes(),
            name.as_bytes(),
        ]);
        *counter += 1;
        let key = SecretKey::from_bytes(digest.0);
        principals.insert(name.to_owned(), key.clone());
        Ok(key)
    }

    /// Returns whether `name` is a registered principal.
    pub fn is_registered(&self, name: &str) -> bool {
        self.principals.read().contains_key(name)
    }

    /// Verifies that `sig` is `name`'s signature over `message`.
    ///
    /// Unknown principals verify as `false`.
    pub fn verify(&self, name: &str, message: &[u8], sig: &Signature) -> bool {
        self.verify_strict(name, message, sig).is_ok()
    }

    /// Like [`KeyAuthority::verify`] but explains failures.
    ///
    /// # Errors
    ///
    /// [`CryptoError::UnknownPrincipal`] if `name` is unregistered;
    /// [`CryptoError::BadSignature`] if the tag or key id do not match.
    pub fn verify_strict(
        &self,
        name: &str,
        message: &[u8],
        sig: &Signature,
    ) -> Result<(), CryptoError> {
        let principals = self.principals.read();
        let key = principals
            .get(name)
            .ok_or_else(|| CryptoError::UnknownPrincipal(name.to_owned()))?;
        if sig.signer() != name || sig.key_id() != key.id() {
            return Err(CryptoError::BadSignature {
                principal: name.to_owned(),
            });
        }
        if !HmacSha256::verify(key.expose(), message, sig.tag()) {
            return Err(CryptoError::BadSignature {
                principal: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Returns the pairwise MAC key shared between `signer` and `receiver`,
    /// as used by [`crate::authenticator`] vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownPrincipal`] if `signer` is unregistered.
    pub fn pairwise(&self, signer: &str, receiver: &str) -> Result<SecretKey, CryptoError> {
        let principals = self.principals.read();
        let key = principals
            .get(signer)
            .ok_or_else(|| CryptoError::UnknownPrincipal(signer.to_owned()))?;
        Ok(key.derive(receiver.as_bytes()))
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.principals.read().len()
    }

    /// Returns `true` if no principal has been registered.
    pub fn is_empty(&self) -> bool {
        self.principals.read().is_empty()
    }
}

impl Default for KeyAuthority {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sig::Signer;

    #[test]
    fn register_and_verify_roundtrip() {
        let authority = KeyAuthority::with_seed(7);
        let signer = Signer::register("s0", &authority);
        let sig = signer.sign(b"hello");
        assert!(authority.verify("s0", b"hello", &sig));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let authority = KeyAuthority::with_seed(7);
        authority.register("s0").unwrap();
        assert_eq!(
            authority.register("s0"),
            Err(CryptoError::DuplicatePrincipal("s0".into()))
        );
    }

    #[test]
    fn unknown_principal_fails_verification() {
        let authority = KeyAuthority::with_seed(7);
        let signer = Signer::register("s0", &authority);
        let sig = signer.sign(b"m");
        let err = authority.verify_strict("ghost", b"m", &sig).unwrap_err();
        assert_eq!(err, CryptoError::UnknownPrincipal("ghost".into()));
    }

    #[test]
    fn cross_principal_signature_rejected() {
        let authority = KeyAuthority::with_seed(7);
        let s0 = Signer::register("s0", &authority);
        Signer::register("s1", &authority);
        let sig = s0.sign(b"m");
        // A signature by s0 must not verify as s1's.
        assert!(!authority.verify("s1", b"m", &sig));
    }

    #[test]
    fn rekey_invalidates_old_signatures() {
        let authority = KeyAuthority::with_seed(7);
        let signer = Signer::register("s0", &authority);
        let old_sig = signer.sign(b"m");
        assert!(authority.verify("s0", b"m", &old_sig));
        let new_key = authority.rekey("s0").unwrap();
        assert!(!authority.verify("s0", b"m", &old_sig), "stale key accepted");
        let new_signer = Signer::from_key("s0", new_key);
        assert!(authority.verify("s0", b"m", &new_signer.sign(b"m")));
    }

    #[test]
    fn rekey_unknown_principal_errors() {
        let authority = KeyAuthority::with_seed(7);
        assert_eq!(
            authority.rekey("nobody"),
            Err(CryptoError::UnknownPrincipal("nobody".into()))
        );
    }

    #[test]
    fn seeded_authorities_are_reproducible() {
        let a = KeyAuthority::with_seed(99);
        let b = KeyAuthority::with_seed(99);
        let ka = a.register("x").unwrap();
        let kb = b.register("x").unwrap();
        assert_eq!(ka, kb);
    }

    #[test]
    fn pairwise_keys_are_directional_per_receiver() {
        let authority = KeyAuthority::with_seed(1);
        authority.register("a").unwrap();
        let ab = authority.pairwise("a", "b").unwrap();
        let ac = authority.pairwise("a", "c").unwrap();
        assert_ne!(ab, ac);
        assert_eq!(ab, authority.pairwise("a", "b").unwrap());
    }

    #[test]
    fn len_and_is_empty() {
        let authority = KeyAuthority::with_seed(1);
        assert!(authority.is_empty());
        authority.register("a").unwrap();
        assert_eq!(authority.len(), 1);
        assert!(!authority.is_empty());
        assert!(authority.is_registered("a"));
        assert!(!authority.is_registered("b"));
    }
}
