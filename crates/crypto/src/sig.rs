//! MAC-based signatures and the doubly-signed response envelope.
//!
//! A [`Signer`] holds a principal's secret key (registered with the trusted
//! [`KeyAuthority`]) and produces [`Signature`]s. Verification goes through
//! the authority, mirroring how FORTRESS clients learn keys from the trusted
//! name server.
//!
//! [`DoublySigned`] is the wire format of a FORTRESS response: the server's
//! signature over the response body, over-signed by the proxy that forwarded
//! it. A client "accepts a response as valid if it has two authentic
//! signatures - one from the proxy that sent the response and the other from
//! one of the servers" (paper §3).

use serde::{Deserialize, Serialize};

use crate::authority::KeyAuthority;
use crate::error::CryptoError;
use crate::hmac::HmacSha256;
use crate::keys::{KeyId, SecretKey};
use crate::sha256::Digest;

/// A signature: the signer's name, the id of the key used, and the MAC tag.
///
/// The name and key id are authenticated implicitly: verification recomputes
/// the tag with the authority's key for that name and compares key ids, so a
/// relabeled or replayed-under-new-key signature fails.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Signature {
    signer: String,
    key_id: KeyId,
    tag: Digest,
}

impl Signature {
    /// Name of the principal that (claims to have) produced this signature.
    pub fn signer(&self) -> &str {
        &self.signer
    }

    /// Identifier of the key used.
    pub fn key_id(&self) -> KeyId {
        self.key_id
    }

    /// The MAC tag.
    pub fn tag(&self) -> &Digest {
        &self.tag
    }

    /// Builds a deliberately invalid signature for fault-injection tests.
    pub fn forged(signer: &str) -> Signature {
        Signature {
            signer: signer.to_owned(),
            key_id: KeyId(0),
            tag: Digest([0u8; 32]),
        }
    }

    /// Reassembles a signature from its wire components. Decoders use this;
    /// a fabricated signature simply fails verification.
    pub fn from_parts(signer: String, key_id: KeyId, tag: Digest) -> Signature {
        Signature { signer, key_id, tag }
    }
}

/// A signing principal: a name plus its current secret key.
///
/// # Example
///
/// ```
/// use fortress_crypto::{KeyAuthority, Signer};
///
/// let authority = KeyAuthority::with_seed(3);
/// let signer = Signer::register("backup-2", &authority);
/// let sig = signer.sign(b"state update 17");
/// assert!(authority.verify("backup-2", b"state update 17", &sig));
/// ```
#[derive(Clone, Debug)]
pub struct Signer {
    name: String,
    key: SecretKey,
}

impl Signer {
    /// Registers `name` with the authority and returns its signer.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered; system assembly controls all
    /// names, so a duplicate is a configuration bug.
    pub fn register(name: &str, authority: &KeyAuthority) -> Signer {
        let key = authority
            .register(name)
            .expect("principal names are unique at assembly time");
        Signer {
            name: name.to_owned(),
            key,
        }
    }

    /// Wraps an existing key (e.g. after [`KeyAuthority::rekey`]).
    pub fn from_key(name: &str, key: SecretKey) -> Signer {
        Signer {
            name: name.to_owned(),
            key,
        }
    }

    /// This signer's principal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            signer: self.name.clone(),
            key_id: self.key.id(),
            tag: HmacSha256::mac(self.key.expose(), message),
        }
    }

    /// Signs the concatenation of `parts` without joining them.
    pub fn sign_parts(&self, parts: &[&[u8]]) -> Signature {
        Signature {
            signer: self.name.clone(),
            key_id: self.key.id(),
            tag: HmacSha256::mac_parts(self.key.expose(), parts),
        }
    }
}

/// A response body carrying a server signature over-signed by a proxy.
///
/// The proxy signs the *pair* (body, server signature tag) so the two
/// signatures cannot be mixed and matched across responses.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DoublySigned {
    body: Vec<u8>,
    server_sig: Signature,
    proxy_sig: Signature,
}

impl DoublySigned {
    /// Proxy-side constructor: over-signs an authentic server response.
    pub fn over_sign(body: Vec<u8>, server_sig: Signature, proxy: &Signer) -> DoublySigned {
        let proxy_sig = proxy.sign_parts(&[&body, &server_sig.tag().0]);
        DoublySigned {
            body,
            server_sig,
            proxy_sig,
        }
    }

    /// The response body.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The inner (server) signature.
    pub fn server_sig(&self) -> &Signature {
        &self.server_sig
    }

    /// The outer (proxy) signature.
    pub fn proxy_sig(&self) -> &Signature {
        &self.proxy_sig
    }

    /// Client-side verification against the trusted authority.
    ///
    /// `expected_servers` is the set of server principal names learned from
    /// the name server (the client knows server indices and public keys,
    /// paper §3); the inner signature must come from one of them. Likewise
    /// the outer signature must come from a known proxy.
    ///
    /// # Errors
    ///
    /// Returns the first failing check as a [`CryptoError`].
    pub fn verify(
        &self,
        authority: &KeyAuthority,
        expected_servers: &[String],
        expected_proxies: &[String],
    ) -> Result<(), CryptoError> {
        if !expected_servers.iter().any(|s| s == self.server_sig.signer()) {
            return Err(CryptoError::BadSignature {
                principal: self.server_sig.signer().to_owned(),
            });
        }
        if !expected_proxies.iter().any(|p| p == self.proxy_sig.signer()) {
            return Err(CryptoError::BadSignature {
                principal: self.proxy_sig.signer().to_owned(),
            });
        }
        authority.verify_strict(self.server_sig.signer(), &self.body, &self.server_sig)?;
        let over_signed: Vec<u8> = self
            .body
            .iter()
            .copied()
            .chain(self.server_sig.tag().0.iter().copied())
            .collect();
        authority.verify_strict(self.proxy_sig.signer(), &over_signed, &self.proxy_sig)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (KeyAuthority, Signer, Signer) {
        let authority = KeyAuthority::with_seed(11);
        let server = Signer::register("server-1", &authority);
        let proxy = Signer::register("proxy-0", &authority);
        (authority, server, proxy)
    }

    #[test]
    fn doubly_signed_roundtrip() {
        let (authority, server, proxy) = setup();
        let body = b"result=42".to_vec();
        let server_sig = server.sign(&body);
        let env = DoublySigned::over_sign(body, server_sig, &proxy);
        env.verify(
            &authority,
            &["server-1".into()],
            &["proxy-0".into()],
        )
        .unwrap();
    }

    #[test]
    fn tampered_body_rejected() {
        let (authority, server, proxy) = setup();
        let body = b"result=42".to_vec();
        let server_sig = server.sign(&body);
        let mut env = DoublySigned::over_sign(body, server_sig, &proxy);
        env.body = b"result=43".to_vec();
        assert!(env
            .verify(&authority, &["server-1".into()], &["proxy-0".into()])
            .is_err());
    }

    #[test]
    fn unexpected_server_rejected() {
        let (authority, server, proxy) = setup();
        let body = b"r".to_vec();
        let sig = server.sign(&body);
        let env = DoublySigned::over_sign(body, sig, &proxy);
        // Client only trusts server-9.
        let err = env
            .verify(&authority, &["server-9".into()], &["proxy-0".into()])
            .unwrap_err();
        assert!(matches!(err, CryptoError::BadSignature { .. }));
    }

    #[test]
    fn unexpected_proxy_rejected() {
        let (authority, server, proxy) = setup();
        let body = b"r".to_vec();
        let sig = server.sign(&body);
        let env = DoublySigned::over_sign(body, sig, &proxy);
        assert!(env
            .verify(&authority, &["server-1".into()], &["proxy-7".into()])
            .is_err());
    }

    #[test]
    fn forged_server_signature_rejected() {
        let (authority, _server, proxy) = setup();
        let body = b"r".to_vec();
        let env = DoublySigned::over_sign(body, Signature::forged("server-1"), &proxy);
        assert!(env
            .verify(&authority, &["server-1".into()], &["proxy-0".into()])
            .is_err());
    }

    #[test]
    fn signature_cannot_be_transplanted_across_bodies() {
        let (authority, server, proxy) = setup();
        let sig_a = server.sign(b"a");
        let env = DoublySigned::over_sign(b"b".to_vec(), sig_a, &proxy);
        assert!(env
            .verify(&authority, &["server-1".into()], &["proxy-0".into()])
            .is_err());
    }

    #[test]
    fn sign_parts_equals_sign_of_concat() {
        let (_, server, _) = setup();
        assert_eq!(server.sign(b"xyz"), server.sign_parts(&[b"x", b"yz"]));
    }

    #[test]
    fn accessors() {
        let (_, server, proxy) = setup();
        let sig = server.sign(b"m");
        assert_eq!(sig.signer(), "server-1");
        let env = DoublySigned::over_sign(b"m".to_vec(), sig.clone(), &proxy);
        assert_eq!(env.body(), b"m");
        assert_eq!(env.server_sig(), &sig);
        assert_eq!(env.proxy_sig().signer(), "proxy-0");
        assert_eq!(server.name(), "server-1");
    }
}
