//! Secret keys, key identifiers and deterministic key generation.
//!
//! Keys in this crate are 32-byte symmetric secrets. Each key carries a
//! [`KeyId`] derived from its bytes so that signatures can name the key that
//! produced them without revealing it.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::sha256::Sha256;

/// Length of a secret key in bytes.
pub const KEY_LEN: usize = 32;

/// A public, non-secret identifier for a [`SecretKey`].
///
/// Derived as the first 8 bytes of `SHA-256("fortress-key-id" || key)`, so it
/// is safe to embed in messages: recovering the key from it would require
/// inverting SHA-256.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KeyId(pub u64);

impl fmt::Debug for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyId({:016x})", self.0)
    }
}

impl fmt::Display for KeyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A 32-byte symmetric secret key.
///
/// The `Debug` implementation never prints key material (only the key id),
/// and the raw bytes are only reachable through [`SecretKey::expose`], which
/// makes accidental leakage grep-able.
///
/// # Example
///
/// ```
/// use fortress_crypto::keys::SecretKey;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let key = SecretKey::generate(&mut rng);
/// assert_eq!(key.id(), key.clone().id());
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    bytes: [u8; KEY_LEN],
}

impl SecretKey {
    /// Creates a key from raw bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SecretKey { bytes }
    }

    /// Generates a fresh random key from the supplied RNG.
    pub fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        SecretKey { bytes }
    }

    /// Deterministically derives a sub-key for `purpose`.
    ///
    /// Used to give each principal pair its own MAC key from one registered
    /// root key: `derive` is a one-way function of the parent key, so a
    /// compromised derived key does not reveal its siblings.
    pub fn derive(&self, purpose: &[u8]) -> SecretKey {
        let digest = Sha256::digest_parts(&[b"fortress-derive", &self.bytes, purpose]);
        SecretKey { bytes: digest.0 }
    }

    /// Returns the public identifier of this key.
    pub fn id(&self) -> KeyId {
        let digest = Sha256::digest_parts(&[b"fortress-key-id", &self.bytes]);
        KeyId(digest.prefix_u64())
    }

    /// Exposes the raw key bytes. Call sites of this method are the audit
    /// surface for key-material handling.
    pub fn expose(&self) -> &[u8; KEY_LEN] {
        &self.bytes
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SecretKey({:?})", self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generate_is_seed_deterministic() {
        let k1 = SecretKey::generate(&mut StdRng::seed_from_u64(42));
        let k2 = SecretKey::generate(&mut StdRng::seed_from_u64(42));
        let k3 = SecretKey::generate(&mut StdRng::seed_from_u64(43));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn id_is_stable_and_key_dependent() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = SecretKey::generate(&mut rng);
        let b = SecretKey::generate(&mut rng);
        assert_eq!(a.id(), a.id());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn derive_is_deterministic_and_purpose_separated() {
        let root = SecretKey::from_bytes([9u8; KEY_LEN]);
        let d1 = root.derive(b"proxy-0");
        let d2 = root.derive(b"proxy-0");
        let d3 = root.derive(b"proxy-1");
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
        assert_ne!(d1, root);
    }

    #[test]
    fn debug_never_prints_key_material() {
        let key = SecretKey::from_bytes([0xabu8; KEY_LEN]);
        let rendered = format!("{key:?}");
        assert!(!rendered.contains("abababab"), "debug leaked key: {rendered}");
        assert!(rendered.starts_with("SecretKey(KeyId("));
    }

    #[test]
    fn key_id_formatting() {
        let id = KeyId(0xdeadbeef);
        assert_eq!(format!("{id}"), "00000000deadbeef");
        assert_eq!(format!("{id:?}"), "KeyId(00000000deadbeef)");
    }
}
