//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! The implementation follows the specification directly: 512-bit blocks, 64
//! rounds, Merkle–Damgård padding with a 64-bit big-endian length. It is used
//! by [`crate::hmac`] and, transitively, by every signature in the protocol
//! stack.
//!
//! # Example
//!
//! ```
//! use fortress_crypto::sha256::Sha256;
//!
//! let digest = Sha256::digest(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Length of a SHA-256 message block in bytes.
pub const BLOCK_LEN: usize = 64;

/// The per-round constants `K` (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values `H0` (first 32 bits of the fractional parts of the
/// square roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 256-bit digest produced by [`Sha256`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest as a lowercase hexadecimal string.
    ///
    /// ```
    /// use fortress_crypto::sha256::Sha256;
    /// let hex = Sha256::digest(b"").to_hex();
    /// assert!(hex.starts_with("e3b0c442"));
    /// ```
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Returns the raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Interprets the first eight bytes of the digest as a big-endian `u64`.
    ///
    /// Useful for deriving well-distributed integers (e.g. simulated layout
    /// offsets) from hashed material.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// Supports streaming input via [`Sha256::update`] and one-shot hashing via
/// [`Sha256::digest`].
///
/// # Example
///
/// ```
/// use fortress_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"a");
/// hasher.update(b"bc");
/// assert_eq!(hasher.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full block is available.
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    /// Total message length in bytes (mod 2^64).
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hashes `data` and returns the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Hashes the concatenation of several byte slices without allocating.
    ///
    /// Equivalent to updating with each part in order.
    pub fn digest_parts(parts: &[&[u8]]) -> Digest {
        let mut h = Sha256::new();
        for p in parts {
            h.update(p);
        }
        h.finalize()
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially-filled buffer first.
        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process full blocks straight from the input.
        while input.len() >= BLOCK_LEN {
            let (block, rest) = input.split_at(BLOCK_LEN);
            let mut owned = [0u8; BLOCK_LEN];
            owned.copy_from_slice(block);
            self.compress(&owned);
            input = rest;
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the digest of all fed data.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);

        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            BLOCK_LEN + 56 - self.buffer_len
        };
        let mut tail = Vec::with_capacity(pad_len + 8);
        tail.extend_from_slice(&pad[..pad_len]);
        tail.extend_from_slice(&bit_len.to_be_bytes());

        // `update` would disturb total_len; feed blocks through the raw path.
        let mut remaining: Vec<u8> = Vec::with_capacity(self.buffer_len + tail.len());
        remaining.extend_from_slice(&self.buffer[..self.buffer_len]);
        remaining.extend_from_slice(&tail);
        debug_assert!(remaining.len().is_multiple_of(BLOCK_LEN));
        for chunk in remaining.chunks_exact(BLOCK_LEN) {
            let mut owned = [0u8; BLOCK_LEN];
            owned.copy_from_slice(chunk);
            self.compress(&owned);
        }

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// The SHA-256 compression function applied to one 512-bit block.
    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / well-known test vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"The quick brown fox jumps over the lazy dog",
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592",
        ),
    ];

    #[test]
    fn known_vectors() {
        for (msg, want) in VECTORS {
            assert_eq!(Sha256::digest(msg).to_hex(), *want, "vector {msg:?}");
        }
    }

    #[test]
    fn million_a_vector() {
        // FIPS 180-4 long vector: one million 'a' characters.
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_every_split() {
        let data: Vec<u8> = (0u8..=255).cycle().take(513).collect();
        let oneshot = Sha256::digest(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concatenation() {
        let joined = Sha256::digest(b"hello world");
        let parts = Sha256::digest_parts(&[b"hello", b" ", b"world"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 55/56/64-byte padding boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0x5au8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), Sha256::digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_formatting() {
        let d = Sha256::digest(b"abc");
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf"));
        assert_eq!(d.as_bytes().len(), DIGEST_LEN);
    }

    #[test]
    fn prefix_u64_is_big_endian_prefix() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.prefix_u64(), 0x0102030405060708);
    }

    #[test]
    fn distinct_messages_distinct_digests() {
        // Smoke-level collision sanity over a structured family.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0u32..1000 {
            assert!(seen.insert(Sha256::digest(&i.to_le_bytes())), "i={i}");
        }
    }
}
