//! Cryptographic substrate for the FORTRESS reproduction.
//!
//! The FORTRESS architecture (Clarke & Ezhilchelvan, DSN 2010) requires that
//! servers *sign* responses, that proxies *over-sign* one authentic server
//! response, and that clients verify the resulting **doubly-signed** response
//! carries two authentic signatures. The paper assumes a trusted, read-only
//! name server (NS) through which clients learn proxies' and servers' public
//! keys.
//!
//! This crate provides everything the protocol stack needs, built from
//! scratch on the approved dependency set (no external crypto crates):
//!
//! * [`sha256`] — FIPS 180-4 SHA-256.
//! * [`hmac`] — RFC 2104 HMAC-SHA256.
//! * [`keys`] — secret keys, key identifiers and deterministic generation.
//! * [`authority`] — a trusted [`KeyAuthority`] modeling the paper's NS: it
//!   distributes verification capability for every principal's signatures.
//! * [`sig`] — MAC-based signatures ([`Signer`], [`Signature`]) verified
//!   through the authority, plus the [`sig::DoublySigned`] envelope.
//! * [`authenticator`] — PBFT-style authenticator vectors (one MAC per
//!   receiver) used by the SMR engine's ordering protocol.
//!
//! # Substitution note (documented in DESIGN.md)
//!
//! Real deployments would use asymmetric signatures. Within the paper's trust
//! model a trusted NS already exists, so MAC-based signatures whose
//! verification keys are held by that trusted authority provide the same two
//! properties the protocol relies on: the attacker cannot forge a signature of
//! an uncompromised principal, and any party can check authenticity through
//! the NS. See `DESIGN.md §5`.
//!
//! # Example
//!
//! ```
//! use fortress_crypto::authority::KeyAuthority;
//! use fortress_crypto::sig::Signer;
//!
//! let authority = KeyAuthority::new();
//! let server = Signer::register("server-0", &authority);
//! let sig = server.sign(b"response body");
//! assert!(authority.verify("server-0", b"response body", &sig));
//! assert!(!authority.verify("server-0", b"tampered body", &sig));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authenticator;
pub mod authority;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod sha256;
pub mod sig;

pub use authority::KeyAuthority;
pub use error::CryptoError;
pub use hmac::HmacSha256;
pub use keys::{KeyId, SecretKey};
pub use sha256::Sha256;
pub use sig::{Signature, Signer};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::KeyAuthority>();
        assert_send_sync::<super::Signer>();
        assert_send_sync::<super::Signature>();
        assert_send_sync::<super::SecretKey>();
    }
}
