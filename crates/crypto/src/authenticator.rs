//! PBFT-style authenticator vectors.
//!
//! The SMR engine's ordering protocol (used by system class S0) authenticates
//! each multicast with an *authenticator*: a vector of MACs, one per
//! receiver, each computed under the pairwise key shared by the sender and
//! that receiver (Castro & Liskov, *Practical Byzantine Fault Tolerance*).
//! This is cheaper than a signature per message and matches how production
//! BFT systems authenticate the common case.

use serde::{Deserialize, Serialize};

use crate::authority::KeyAuthority;
use crate::error::CryptoError;
use crate::hmac::HmacSha256;
use crate::sha256::Digest;

/// A vector of per-receiver MACs over one message.
///
/// # Example
///
/// ```
/// use fortress_crypto::authenticator::Authenticator;
/// use fortress_crypto::KeyAuthority;
///
/// let authority = KeyAuthority::with_seed(5);
/// authority.register("replica-0")?;
/// let receivers = vec!["replica-1".to_string(), "replica-2".to_string()];
/// let auth = Authenticator::generate(&authority, "replica-0", &receivers, b"PRE-PREPARE")?;
/// assert!(auth.verify(&authority, "replica-0", "replica-1", b"PRE-PREPARE")?);
/// # Ok::<(), fortress_crypto::CryptoError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Authenticator {
    entries: Vec<(String, Digest)>,
}

impl Authenticator {
    /// Computes the authenticator of `message` from `sender` to every name in
    /// `receivers`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::UnknownPrincipal`] if `sender` is unregistered.
    pub fn generate(
        authority: &KeyAuthority,
        sender: &str,
        receivers: &[String],
        message: &[u8],
    ) -> Result<Authenticator, CryptoError> {
        let mut entries = Vec::with_capacity(receivers.len());
        for receiver in receivers {
            let key = authority.pairwise(sender, receiver)?;
            entries.push((receiver.clone(), HmacSha256::mac(key.expose(), message)));
        }
        Ok(Authenticator { entries })
    }

    /// Verifies the entry addressed to `receiver`.
    ///
    /// Returns `Ok(true)` when the MAC checks out, `Ok(false)` when it does
    /// not (a *detected* forgery, the normal Byzantine case).
    ///
    /// # Errors
    ///
    /// [`CryptoError::MissingAuthenticatorEntry`] when no entry is addressed
    /// to `receiver`; [`CryptoError::UnknownPrincipal`] when `sender` is
    /// unregistered.
    pub fn verify(
        &self,
        authority: &KeyAuthority,
        sender: &str,
        receiver: &str,
        message: &[u8],
    ) -> Result<bool, CryptoError> {
        let entry = self
            .entries
            .iter()
            .find(|(name, _)| name == receiver)
            .ok_or_else(|| CryptoError::MissingAuthenticatorEntry {
                verifier: receiver.to_owned(),
            })?;
        let key = authority.pairwise(sender, receiver)?;
        Ok(HmacSha256::verify(key.expose(), message, &entry.1))
    }

    /// Number of receiver entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Corrupts the entry addressed to `receiver`, for fault-injection tests.
    /// Returns `true` if an entry was found and corrupted.
    pub fn corrupt_entry(&mut self, receiver: &str) -> bool {
        for (name, tag) in &mut self.entries {
            if name == receiver {
                tag.0[0] ^= 0xff;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn setup() -> KeyAuthority {
        let authority = KeyAuthority::with_seed(21);
        for name in ["r0", "r1", "r2", "r3"] {
            authority.register(name).unwrap();
        }
        authority
    }

    #[test]
    fn all_receivers_verify() {
        let authority = setup();
        let rx = names(&["r1", "r2", "r3"]);
        let auth = Authenticator::generate(&authority, "r0", &rx, b"msg").unwrap();
        assert_eq!(auth.len(), 3);
        for r in ["r1", "r2", "r3"] {
            assert!(auth.verify(&authority, "r0", r, b"msg").unwrap(), "{r}");
        }
    }

    #[test]
    fn wrong_message_fails() {
        let authority = setup();
        let auth =
            Authenticator::generate(&authority, "r0", &names(&["r1"]), b"msg").unwrap();
        assert!(!auth.verify(&authority, "r0", "r1", b"other").unwrap());
    }

    #[test]
    fn wrong_sender_fails() {
        let authority = setup();
        let auth =
            Authenticator::generate(&authority, "r0", &names(&["r2"]), b"msg").unwrap();
        // r1 claims to be the sender; r2's pairwise key with r1 differs.
        assert!(!auth.verify(&authority, "r1", "r2", b"msg").unwrap());
    }

    #[test]
    fn missing_entry_is_an_error() {
        let authority = setup();
        let auth =
            Authenticator::generate(&authority, "r0", &names(&["r1"]), b"msg").unwrap();
        let err = auth.verify(&authority, "r0", "r3", b"msg").unwrap_err();
        assert_eq!(
            err,
            CryptoError::MissingAuthenticatorEntry {
                verifier: "r3".into()
            }
        );
    }

    #[test]
    fn corrupt_entry_detected() {
        let authority = setup();
        let mut auth =
            Authenticator::generate(&authority, "r0", &names(&["r1", "r2"]), b"m").unwrap();
        assert!(auth.corrupt_entry("r1"));
        assert!(!auth.verify(&authority, "r0", "r1", b"m").unwrap());
        // Other entries are unaffected.
        assert!(auth.verify(&authority, "r0", "r2", b"m").unwrap());
        assert!(!auth.corrupt_entry("r9"));
    }

    #[test]
    fn empty_receiver_set() {
        let authority = setup();
        let auth = Authenticator::generate(&authority, "r0", &[], b"m").unwrap();
        assert!(auth.is_empty());
    }

    #[test]
    fn unknown_sender_errors() {
        let authority = setup();
        let err = Authenticator::generate(&authority, "ghost", &names(&["r1"]), b"m");
        assert!(matches!(err, Err(CryptoError::UnknownPrincipal(_))));
    }
}
