//! Error types for the crypto substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by cryptographic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// The named principal is not registered with the key authority.
    UnknownPrincipal(String),
    /// A principal with this name is already registered.
    DuplicatePrincipal(String),
    /// A signature failed verification.
    BadSignature {
        /// Principal whose signature was being checked.
        principal: String,
    },
    /// An authenticator vector did not contain an entry for the verifier.
    MissingAuthenticatorEntry {
        /// The verifier that found no entry addressed to it.
        verifier: String,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::UnknownPrincipal(name) => {
                write!(f, "principal `{name}` is not registered with the authority")
            }
            CryptoError::DuplicatePrincipal(name) => {
                write!(f, "principal `{name}` is already registered")
            }
            CryptoError::BadSignature { principal } => {
                write!(f, "signature attributed to `{principal}` failed verification")
            }
            CryptoError::MissingAuthenticatorEntry { verifier } => {
                write!(f, "authenticator vector has no entry for verifier `{verifier}`")
            }
        }
    }
}

impl Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_unpunctuated() {
        let errors: Vec<CryptoError> = vec![
            CryptoError::UnknownPrincipal("p".into()),
            CryptoError::DuplicatePrincipal("p".into()),
            CryptoError::BadSignature { principal: "p".into() },
            CryptoError::MissingAuthenticatorEntry { verifier: "v".into() },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.ends_with('.'), "trailing punctuation: {msg}");
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with('`'));
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_e: E) {}
        takes_err(CryptoError::UnknownPrincipal("x".into()));
    }
}
