//! RFC 2104 HMAC over [`crate::sha256`].
//!
//! HMAC-SHA256 is the sole MAC primitive of the stack: it backs the
//! [`crate::sig`] signature scheme and the [`crate::authenticator`] vectors.
//!
//! # Example
//!
//! ```
//! use fortress_crypto::hmac::HmacSha256;
//!
//! let tag = HmacSha256::mac(b"key material", b"message");
//! assert!(HmacSha256::verify(b"key material", b"message", &tag));
//! assert!(!HmacSha256::verify(b"key material", b"other", &tag));
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN};

/// Stateless HMAC-SHA256 operations.
///
/// All functions are associated functions: HMAC needs no long-lived state
/// beyond the key, which callers own (see [`crate::keys::SecretKey`]).
#[derive(Debug, Clone, Copy)]
pub struct HmacSha256;

impl HmacSha256 {
    /// Computes `HMAC-SHA256(key, message)`.
    ///
    /// Keys longer than the 64-byte block size are first hashed, per RFC
    /// 2104; shorter keys are zero-padded.
    pub fn mac(key: &[u8], message: &[u8]) -> Digest {
        Self::mac_parts(key, &[message])
    }

    /// Computes the MAC of the concatenation of `parts` without allocating a
    /// joined buffer.
    pub fn mac_parts(key: &[u8], parts: &[&[u8]]) -> Digest {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let hashed = Sha256::digest(key);
            key_block[..hashed.0.len()].copy_from_slice(&hashed.0);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finalize();

        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&inner_digest.0);
        outer.finalize()
    }

    /// Verifies a tag in constant time with respect to tag contents.
    pub fn verify(key: &[u8], message: &[u8], tag: &Digest) -> bool {
        let expected = Self::mac(key, message);
        constant_time_eq(&expected.0, &tag.0)
    }
}

/// Constant-time byte-slice comparison (no early exit on mismatch).
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test cases 1-4 and 6 for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag.0),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag.0),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag.0),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag.0),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            hex(&tag.0),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_parts_matches_joined() {
        let key = b"some key";
        let joined = HmacSha256::mac(key, b"one two three");
        let parts = HmacSha256::mac_parts(key, &[b"one ", b"two ", b"three"]);
        assert_eq!(joined, parts);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(HmacSha256::mac(b"a", b"m"), HmacSha256::mac(b"b", b"m"));
    }

    #[test]
    fn constant_time_eq_basics() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
    }

    #[test]
    fn key_exactly_block_size() {
        let key = [0x42u8; 64];
        let t1 = HmacSha256::mac(&key, b"msg");
        // A block-size key must NOT be hashed first; compare against a
        // manually padded equivalent by checking it differs from the hashed
        // variant.
        let hashed_key = crate::sha256::Sha256::digest(&key);
        let t2 = HmacSha256::mac(&hashed_key.0, b"msg");
        assert_ne!(t1, t2);
    }
}
