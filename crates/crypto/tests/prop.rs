//! Property-based tests for the crypto substrate.

use fortress_crypto::authority::KeyAuthority;
use fortress_crypto::hmac::{constant_time_eq, HmacSha256};
use fortress_crypto::keys::SecretKey;
use fortress_crypto::sha256::Sha256;
use fortress_crypto::sig::{DoublySigned, Signer};
use proptest::prelude::*;

proptest! {
    /// Hashing is a pure function of the byte stream, independent of chunking.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                 split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    /// Distinct single-byte flips change the digest (second-preimage smoke).
    #[test]
    fn sha256_bit_flip_changes_digest(mut data in proptest::collection::vec(any::<u8>(), 1..512),
                                      idx in any::<prop::sample::Index>()) {
        let original = Sha256::digest(&data);
        let i = idx.index(data.len());
        data[i] ^= 0x01;
        prop_assert_ne!(Sha256::digest(&data), original);
    }

    /// HMAC verifies what it MACs and distinguishes keys and messages.
    #[test]
    fn hmac_roundtrip(key in proptest::collection::vec(any::<u8>(), 0..128),
                      msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let tag = HmacSha256::mac(&key, &msg);
        prop_assert!(HmacSha256::verify(&key, &msg, &tag));
    }

    #[test]
    fn hmac_key_separation(key in proptest::collection::vec(any::<u8>(), 1..64),
                           msg in proptest::collection::vec(any::<u8>(), 0..256),
                           flip in any::<prop::sample::Index>()) {
        let mut other = key.clone();
        let i = flip.index(other.len());
        other[i] ^= 0x80;
        prop_assert_ne!(HmacSha256::mac(&key, &msg), HmacSha256::mac(&other, &msg));
    }

    /// constant_time_eq agrees with ==.
    #[test]
    fn ct_eq_agrees_with_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(constant_time_eq(&a, &b), a == b);
    }

    /// Key derivation is injective over purposes in practice.
    #[test]
    fn derive_purpose_separation(seed in any::<[u8; 32]>(),
                                 p1 in proptest::collection::vec(any::<u8>(), 0..32),
                                 p2 in proptest::collection::vec(any::<u8>(), 0..32)) {
        prop_assume!(p1 != p2);
        let root = SecretKey::from_bytes(seed);
        prop_assert_ne!(root.derive(&p1), root.derive(&p2));
    }

    /// Any body signed and over-signed verifies; any tampering is caught.
    #[test]
    fn doubly_signed_integrity(body in proptest::collection::vec(any::<u8>(), 0..256),
                               tamper in any::<Option<prop::sample::Index>>()) {
        let authority = KeyAuthority::with_seed(1234);
        let server = Signer::register("s", &authority);
        let proxy = Signer::register("p", &authority);
        let sig = server.sign(&body);
        let env = DoublySigned::over_sign(body.clone(), sig, &proxy);
        let servers = vec!["s".to_string()];
        let proxies = vec!["p".to_string()];
        match tamper {
            None => prop_assert!(env.verify(&authority, &servers, &proxies).is_ok()),
            Some(idx) if !body.is_empty() => {
                let mut forged_body = body.clone();
                let i = idx.index(forged_body.len());
                forged_body[i] ^= 0x01;
                let forged_sig = server.sign(&body); // sig over ORIGINAL body
                let env2 = DoublySigned::over_sign(forged_body, forged_sig, &proxy);
                // The proxy signed the forged body, but the server signature
                // no longer matches it.
                prop_assert!(env2.verify(&authority, &servers, &proxies).is_err());
            }
            _ => {}
        }
    }
}
